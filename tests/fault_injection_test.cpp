// Fault-injection tests for the mpisim runtime and the distributed
// solvers: seeded drop plans must surface as descriptive timeouts (not
// hangs), delay-only plans must leave answers bit-compatible with the
// fault-free run, a killed rank must be visible to its peers as
// timeouts, and injection bookkeeping must be deterministic.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <random>

#include "core/dist_hybrid.hpp"
#include "core/dist_solver.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"
#include "obs/obs.hpp"

namespace fdks {
namespace {

using askit::AskitConfig;
using core::DistributedHybridSolver;
using core::DistributedSolver;
using core::HybridOptions;
using core::SolverOptions;
using kernel::Kernel;
using la::Matrix;
using la::index_t;
using mpisim::Comm;
using mpisim::FaultAction;
using mpisim::FaultPlan;
using mpisim::MultiRankError;
using mpisim::TimeoutError;
using mpisim::WorldOptions;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig dist_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 5;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

TEST(FaultPlanDecide, IsDeterministicAndRespectsFractions) {
  FaultPlan plan;
  plan.seed = 42;
  plan.drop_fraction = 0.10;
  plan.delay_fraction = 0.20;
  plan.corrupt_fraction = 0.05;

  int drops = 0, delays = 0, corrupts = 0, dups = 0;
  const int trials = 20000;
  for (int s = 0; s < trials; ++s) {
    const FaultAction a = fault_decide(plan, 0, 1, 7, s);
    const FaultAction again = fault_decide(plan, 0, 1, 7, s);
    ASSERT_EQ(a, again) << "decision must be a pure function";
    switch (a) {
      case FaultAction::Drop: ++drops; break;
      case FaultAction::Delay: ++delays; break;
      case FaultAction::Corrupt: ++corrupts; break;
      case FaultAction::Duplicate: ++dups; break;
      case FaultAction::None: break;
    }
  }
  EXPECT_EQ(dups, 0);
  EXPECT_NEAR(drops / double(trials), 0.10, 0.02);
  EXPECT_NEAR(delays / double(trials), 0.20, 0.02);
  EXPECT_NEAR(corrupts / double(trials), 0.05, 0.02);

  // Different links decide independently (not all-or-nothing).
  int diff = 0;
  for (int s = 0; s < 1000; ++s)
    if (fault_decide(plan, 0, 1, 7, s) != fault_decide(plan, 2, 3, 7, s))
      ++diff;
  EXPECT_GT(diff, 0);
}

TEST(FaultInjection, RecvTimeoutNamesRankTagAndDeadline) {
  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(150);
  bool caught = false;
  // Only rank 0 blocks on a recv nobody sends; exactly one rank fails,
  // so the original TimeoutError must be rethrown unwrapped.
  try {
    mpisim::run(
        2,
        [](Comm& c) {
          if (c.rank() == 0) (void)c.recv(1, 42);
        },
        wo);
  } catch (const TimeoutError& e) {
    caught = true;
    EXPECT_EQ(e.waiting_rank(), 0);
    EXPECT_EQ(e.src_rank(), 1);
    EXPECT_EQ(e.tag(), 42);
    // The structured deadline/elapsed fields: the configured deadline,
    // and at least that much actually waited (small scheduler slack).
    EXPECT_EQ(e.deadline().count(), 150);
    EXPECT_GE(e.elapsed().count(), 140);
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 42"), std::string::npos) << what;
    EXPECT_NE(what.find("waited"), std::string::npos) << what;
    EXPECT_NE(what.find("deadline 150 ms"), std::string::npos) << what;
  }
  EXPECT_TRUE(caught);
}

// Fault plans are validated when the world is armed: a bad field must be
// rejected up front with an invalid_argument naming it, not silently
// produce a nonsensical injection schedule.
TEST(FaultPlanValidation, NamesTheBadField) {
  const auto expect_rejected = [](const WorldOptions& wo,
                                  const char* field) {
    try {
      mpisim::run(2, [](Comm&) {}, wo);
      FAIL() << field << " must be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };

  WorldOptions wo;
  wo.faults.drop_fraction = 1.5;
  expect_rejected(wo, "drop_fraction");

  wo = WorldOptions{};
  wo.faults.corrupt_fraction = -0.1;
  expect_rejected(wo, "corrupt_fraction");

  wo = WorldOptions{};
  wo.faults.delay = std::chrono::milliseconds(-5);
  expect_rejected(wo, "delay");

  wo = WorldOptions{};
  wo.faults.kill_rank = 7;  // World has 2 ranks.
  expect_rejected(wo, "kill_rank");

  wo = WorldOptions{};
  wo.faults.stall_rank = -3;
  expect_rejected(wo, "stall_rank");

  wo = WorldOptions{};
  wo.reliable.enabled = true;
  wo.reliable.ack_timeout = std::chrono::milliseconds(0);
  expect_rejected(wo, "ack_timeout");

  wo = WorldOptions{};
  wo.reliable.enabled = true;
  wo.reliable.backoff = 0.5;
  expect_rejected(wo, "backoff");

  wo = WorldOptions{};
  wo.reliable.enabled = true;
  wo.reliable.max_retries = -1;
  expect_rejected(wo, "max_retries");
}

TEST(FaultPlanValidation, AcceptsValidPlansIncludingBoundaries) {
  WorldOptions wo;
  wo.faults.drop_fraction = 0.0;
  wo.faults.delay_fraction = 1.0;
  wo.faults.delay = std::chrono::milliseconds(0);
  wo.faults.kill_rank = -1;   // Disabled is valid.
  wo.faults.stall_rank = 1;   // In range for 2 ranks.
  mpisim::run(2, [](Comm&) {}, wo);  // Must not throw.
}

TEST(FaultInjection, TimeoutZeroDisablesDeadline) {
  // timeout <= 0 must mean "wait forever": the late message still lands.
  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(0);
  mpisim::run(
      2,
      [](Comm& c) {
        if (c.rank() == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
          c.send(0, 3, std::vector<double>{9.0});
        } else {
          EXPECT_EQ(c.recv(1, 3).at(0), 9.0);
        }
      },
      wo);
}

TEST(FaultInjection, SeededDropPlanSurfacesAsTimeoutsOnDistSolver) {
  obs::set_enabled(true);
  obs::reset();
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  auto u = random_vec(n, 2);

  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(400);
  wo.faults.seed = 7;
  wo.faults.drop_fraction = 0.25;  // Factorization traffic cannot survive.

  const auto t0 = std::chrono::steady_clock::now();
  bool caught = false;
  try {
    mpisim::run(
        4,
        [&](Comm& comm) {
          DistributedSolver ds(h, opts, comm);
          (void)ds.solve(u);
        },
        wo);
  } catch (const std::exception& e) {
    caught = true;
    // Whether one rank or several hit the deadline, the message must
    // carry the descriptive timeout naming a stuck rank and tag.
    const std::string what = e.what();
    EXPECT_NE(what.find("mpisim timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("tag"), std::string::npos) << what;
    EXPECT_NE(what.find("rank"), std::string::npos) << what;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(caught) << "a 25% drop plan must not complete silently";
  // Bounded failure, not a hang: a handful of serialized 400 ms
  // deadlines at worst, never the 60 s default.
  EXPECT_LT(elapsed, 30.0);

  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counters.at("mpisim.fault.drop"), 1.0);
  EXPECT_GE(counters.at("mpisim.timeouts"), 1.0);
  obs::set_enabled(false);
}

TEST(FaultInjection, DelayOnlyPlanMatchesFaultFreeDistSolver) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 3);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  auto u = random_vec(n, 4);

  std::vector<double> x_clean;
  mpisim::run(4, [&](Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) x_clean = std::move(x);
  });

  WorldOptions wo;
  wo.faults.seed = 11;
  wo.faults.delay_fraction = 0.30;
  wo.faults.delay = std::chrono::milliseconds(5);
  std::vector<double> x_delayed;
  core::SolveStatus status;
  mpisim::run(
      4,
      [&](Comm& comm) {
        DistributedSolver ds(h, opts, comm);
        auto x = ds.solve(u);
        if (comm.rank() == 0) {
          x_delayed = std::move(x);
          status = ds.last_status();
        }
      },
      wo);

  ASSERT_EQ(x_delayed.size(), x_clean.size());
  const double diff =
      la::nrm2(la::vsub(x_delayed, x_clean)) / la::nrm2(x_clean);
  EXPECT_LT(diff, 1e-12) << "delays reorder traffic but not arithmetic";
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(FaultInjection, DelayOnlyPlanMatchesFaultFreeDistHybrid) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 5);
  AskitConfig cfg = dist_config();
  cfg.num_neighbors = 0;
  cfg.level_restriction = 3;
  askit::HMatrix h(pts, Kernel::gaussian(1.0), cfg);
  HybridOptions ho;
  ho.direct.lambda = 0.8;
  ho.gmres.rtol = 1e-12;
  auto u = random_vec(n, 6);

  std::vector<double> x_clean;
  mpisim::run(4, [&](Comm& comm) {
    DistributedHybridSolver ds(h, ho, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) x_clean = std::move(x);
  });

  WorldOptions wo;
  wo.faults.seed = 13;
  wo.faults.delay_fraction = 0.30;
  wo.faults.delay = std::chrono::milliseconds(5);
  std::vector<double> x_delayed;
  core::SolveStatus status;
  mpisim::run(
      4,
      [&](Comm& comm) {
        DistributedHybridSolver ds(h, ho, comm);
        auto x = ds.solve(u);
        if (comm.rank() == 0) {
          x_delayed = std::move(x);
          status = ds.last_status();
        }
      },
      wo);

  ASSERT_EQ(x_delayed.size(), x_clean.size());
  const double diff =
      la::nrm2(la::vsub(x_delayed, x_clean)) / la::nrm2(x_clean);
  EXPECT_LT(diff, 1e-12);
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(FaultInjection, CorruptPlanSurfacesAsCleanStatusNotDeadlock) {
  // The acceptance scenario where the two tentpole halves meet: payload
  // corruption (NaN) flows into the numerics and must surface as a
  // structured non-finite status on every rank — not a hang, not a
  // crash, not silently wrong data.
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 7);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  auto u = random_vec(n, 8);

  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(2000);
  wo.faults.seed = 17;
  wo.faults.corrupt_fraction = 0.5;

  std::vector<core::SolveStatus> status(4);
  try {
    mpisim::run(
        4,
        [&](Comm& comm) {
          DistributedSolver ds(h, opts, comm);
          (void)ds.solve(u);
          status[static_cast<size_t>(comm.rank())] = ds.last_status();
        },
        wo);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(status[static_cast<size_t>(r)].code,
                core::SolveCode::NonFinite)
          << "rank " << r << ": " << status[static_cast<size_t>(r)].message();
    }
  } catch (const std::exception& e) {
    // Corruption of header/metadata payloads (sizes, skeleton ids) can
    // abort decoding instead; a descriptive error is an accepted
    // outcome — silent garbage or a deadlock is not.
    SUCCEED() << "corrupt plan raised: " << e.what();
  }
}

TEST(FaultInjection, KilledRankIsSeenByPeersAsTimeouts) {
  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(200);
  wo.faults.kill_rank = 2;
  wo.faults.kill_after_ops = 4;

  try {
    mpisim::run(
        4,
        [](Comm& c) {
          for (int round = 0; round < 8; ++round) c.barrier();
        },
        wo);
    FAIL() << "a killed rank must not complete";
  } catch (const MultiRankError& e) {
    bool killed = false, timed_out = false;
    for (const auto& re : e.errors()) {
      if (re.what.find("killed by the fault plan") != std::string::npos) {
        EXPECT_EQ(re.rank, 2);
        killed = true;
      }
      if (re.what.find("mpisim timeout") != std::string::npos)
        timed_out = true;
    }
    EXPECT_TRUE(killed) << e.what();
    EXPECT_TRUE(timed_out) << e.what();
  } catch (const TimeoutError&) {
    // Acceptable alternative: the kill raced such that only one rank
    // failed overall — but with a barrier chain peers must also fail.
    FAIL() << "peers of a killed rank must time out too";
  }
}

TEST(FaultInjection, StallDelaysButDoesNotChangeResults) {
  WorldOptions wo;
  wo.faults.stall_rank = 1;
  wo.faults.stall = std::chrono::milliseconds(100);
  const auto t0 = std::chrono::steady_clock::now();
  mpisim::run(
      2,
      [](Comm& c) {
        std::vector<double> v{static_cast<double>(c.rank() + 1)};
        c.allreduce_sum(v);
        EXPECT_EQ(v[0], 3.0);
      },
      wo);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.09);
}

TEST(FaultInjection, MultiRankErrorListsEveryFailedRank) {
  try {
    mpisim::run(4, [](Comm& c) {
      c.barrier();
      if (c.rank() == 0) throw std::runtime_error("alpha failure");
      if (c.rank() == 3) throw std::logic_error("omega failure");
    });
    FAIL() << "expected MultiRankError";
  } catch (const MultiRankError& e) {
    ASSERT_EQ(e.errors().size(), 2u);
    EXPECT_EQ(e.errors()[0].rank, 0);
    EXPECT_EQ(e.errors()[1].rank, 3);
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 4 ranks failed"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0: alpha failure"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3: omega failure"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace fdks
