// Tests for the ball tree: partition invariants, permutation validity,
// balance, and level indexing.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "tree/ball_tree.hpp"

namespace fdks::tree {
namespace {

Matrix random_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Matrix::random_gaussian(d, n, rng);
}

TEST(BallTree, RejectsEmptyAndBadLeafSize) {
  Matrix empty(3, 0);
  EXPECT_THROW(BallTree(empty, {4, 1}), std::invalid_argument);
  Matrix one = random_points(3, 5, 1);
  EXPECT_THROW(BallTree(one, {0, 1}), std::invalid_argument);
}

TEST(BallTree, SinglePointIsRootLeaf) {
  Matrix p = random_points(2, 1, 2);
  BallTree t(p, {4, 1});
  EXPECT_EQ(t.nodes().size(), 1u);
  EXPECT_TRUE(t.node(0).is_leaf());
  EXPECT_EQ(t.depth(), 0);
}

TEST(BallTree, PermutationIsABijection) {
  Matrix p = random_points(5, 137, 3);
  BallTree t(p, {8, 7});
  std::vector<index_t> sorted = t.perm();
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 137; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  // Inverse consistency.
  for (index_t i = 0; i < 137; ++i)
    EXPECT_EQ(t.perm()[static_cast<size_t>(t.inverse_perm()[static_cast<size_t>(i)])], i);
}

TEST(BallTree, NodesCoverDisjointRanges) {
  Matrix p = random_points(3, 200, 4);
  BallTree t(p, {16, 5});
  for (const Node& nd : t.nodes()) {
    if (nd.is_leaf()) continue;
    const Node& l = t.node(nd.left);
    const Node& r = t.node(nd.right);
    EXPECT_EQ(l.begin, nd.begin);
    EXPECT_EQ(l.end, r.begin);
    EXPECT_EQ(r.end, nd.end);
    EXPECT_EQ(l.parent, static_cast<index_t>(&nd - t.nodes().data()));
    EXPECT_EQ(l.level, nd.level + 1);
  }
}

TEST(BallTree, EqualSplitWithinOne) {
  Matrix p = random_points(4, 333, 6);
  BallTree t(p, {10, 8});
  for (const Node& nd : t.nodes()) {
    if (nd.is_leaf()) continue;
    const index_t ls = t.node(nd.left).size();
    const index_t rs = t.node(nd.right).size();
    EXPECT_LE(std::abs(ls - rs), 1);
  }
}

TEST(BallTree, LeavesRespectLeafSize) {
  Matrix p = random_points(2, 500, 9);
  const index_t m = 32;
  BallTree t(p, {m, 10});
  index_t covered = 0;
  for (const Node& nd : t.nodes()) {
    if (!nd.is_leaf()) continue;
    EXPECT_LE(nd.size(), m);
    EXPECT_GE(nd.size(), 1);
    covered += nd.size();
  }
  EXPECT_EQ(covered, 500);
}

TEST(BallTree, DepthIsLogarithmic) {
  Matrix p = random_points(3, 1024, 11);
  BallTree t(p, {16, 12});
  // 1024/16 = 64 leaves => depth log2(64) = 6 exactly for a perfect split.
  EXPECT_EQ(t.depth(), 6);
}

TEST(BallTree, LevelsIndexEveryNode) {
  Matrix p = random_points(6, 300, 13);
  BallTree t(p, {20, 14});
  size_t total = 0;
  for (size_t l = 0; l < t.levels().size(); ++l) {
    for (index_t id : t.levels()[l])
      EXPECT_EQ(t.node(id).level, static_cast<int>(l));
    total += t.levels()[l].size();
  }
  EXPECT_EQ(total, t.nodes().size());
}

TEST(BallTree, LeafOfFindsContainingLeaf) {
  Matrix p = random_points(3, 100, 15);
  BallTree t(p, {8, 16});
  for (index_t pos = 0; pos < 100; ++pos) {
    const Node& leaf = t.node(t.leaf_of(pos));
    EXPECT_TRUE(leaf.is_leaf());
    EXPECT_GE(pos, leaf.begin);
    EXPECT_LT(pos, leaf.end);
  }
}

TEST(BallTree, PermutedPointsGathersColumns) {
  Matrix p = random_points(4, 50, 17);
  BallTree t(p, {8, 18});
  Matrix pp = t.permuted_points(p);
  for (index_t pos = 0; pos < 50; ++pos)
    for (index_t k = 0; k < 4; ++k)
      EXPECT_EQ(pp(k, pos), p(k, t.perm()[static_cast<size_t>(pos)]));
}

TEST(BallTree, SplitSeparatesClusters) {
  // Two well-separated clusters must end up in different level-1 nodes.
  std::mt19937_64 rng(19);
  Matrix p(2, 40);
  for (index_t j = 0; j < 40; ++j) {
    std::normal_distribution<double> g(0.0, 0.1);
    p(0, j) = g(rng) + (j < 20 ? -10.0 : 10.0);
    p(1, j) = g(rng);
  }
  BallTree t(p, {20, 20});
  const Node& l = t.node(t.node(0).left);
  // All original indices < 20 on one side.
  bool left_is_negative =
      t.perm()[static_cast<size_t>(l.begin)] < 20;
  for (index_t pos = l.begin; pos < l.end; ++pos) {
    const bool neg = t.perm()[static_cast<size_t>(pos)] < 20;
    EXPECT_EQ(neg, left_is_negative);
  }
}

TEST(BallTree, DuplicatePointsDoNotCrash) {
  Matrix p(3, 64, 1.0);  // All identical.
  BallTree t(p, {8, 21});
  index_t covered = 0;
  for (const Node& nd : t.nodes())
    if (nd.is_leaf()) covered += nd.size();
  EXPECT_EQ(covered, 64);
}

TEST(BallTree, DeterministicGivenSeed) {
  Matrix p = random_points(5, 128, 22);
  BallTree t1(p, {16, 99});
  BallTree t2(p, {16, 99});
  EXPECT_EQ(t1.perm(), t2.perm());
  EXPECT_EQ(t1.nodes().size(), t2.nodes().size());
}

}  // namespace
}  // namespace fdks::tree
