// Tests for the distributed factorization/solve (Algorithms II.4/II.5):
// the distributed solver must reproduce the sequential solver's solution
// bit-for-bit up to reduction roundoff, for several rank counts.
#include <gtest/gtest.h>

#include <random>

#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig dist_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 5;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, MatchesSequentialSolver) {
  const int p = GetParam();
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;

  FastDirectSolver seq(h, opts);
  auto u = random_vec(n, 2);
  auto x_seq = seq.solve(u);

  std::vector<double> x_dist;
  std::mutex mu;
  mpisim::run(p, [&](mpisim::Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      x_dist = std::move(x);
    }
  });

  ASSERT_EQ(x_dist.size(), x_seq.size());
  const double diff = la::nrm2(la::vsub(x_dist, x_seq)) / la::nrm2(x_seq);
  EXPECT_LT(diff, 1e-10) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 4, 8));

TEST(DistributedSolver, AllRanksGetIdenticalSolution) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 3);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 1.0;
  auto u = random_vec(n, 4);

  std::vector<std::vector<double>> per_rank(4);
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    per_rank[static_cast<size_t>(comm.rank())] = ds.solve(u);
  });
  for (int r = 1; r < 4; ++r) {
    ASSERT_EQ(per_rank[0].size(), per_rank[static_cast<size_t>(r)].size());
    for (size_t i = 0; i < per_rank[0].size(); ++i)
      EXPECT_EQ(per_rank[0][i], per_rank[static_cast<size_t>(r)][i]);
  }
}

TEST(DistributedSolver, ResidualAgainstCompressedOperator) {
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 5);
  askit::HMatrix h(pts, Kernel::gaussian(0.9), dist_config());
  SolverOptions opts;
  opts.lambda = 0.5;
  auto u = random_vec(n, 6);
  double residual = 1.0;
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) residual = h.relative_residual(x, u, 0.5);
  });
  EXPECT_LT(residual, 1e-10);
}

TEST(DistributedSolver, RejectsNonPowerOfTwo) {
  // Every rank rejects the invalid world size, so run() aggregates the
  // three identical std::invalid_arguments into one MultiRankError.
  const index_t n = 128;
  Matrix pts = clustered_points(2, n, 7);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  try {
    mpisim::run(3, [&](mpisim::Comm& comm) {
      DistributedSolver ds(h, opts, comm);
    });
    FAIL() << "expected MultiRankError";
  } catch (const mpisim::MultiRankError& e) {
    EXPECT_EQ(e.errors().size(), 3u);
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
  }
}

TEST(DistributedSolver, RejectsTooManyRanksForTree) {
  // leaf_size 64 on 128 points: depth 1, no complete level 3. All eight
  // ranks throw, surfacing as an aggregated MultiRankError.
  const index_t n = 128;
  Matrix pts = clustered_points(2, n, 8);
  AskitConfig cfg = dist_config();
  cfg.leaf_size = 64;
  askit::HMatrix h(pts, Kernel::gaussian(1.0), cfg);
  SolverOptions opts;
  try {
    mpisim::run(8, [&](mpisim::Comm& comm) {
      DistributedSolver ds(h, opts, comm);
    });
    FAIL() << "expected MultiRankError";
  } catch (const mpisim::MultiRankError& e) {
    EXPECT_EQ(e.errors().size(), 8u);
  }
}

TEST(DistributedSolver, MultipleSolvesReuseFactorization) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 9);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver seq(h, opts);
  auto u1 = random_vec(n, 10);
  auto u2 = random_vec(n, 11);
  auto x1_seq = seq.solve(u1);
  auto x2_seq = seq.solve(u2);
  double d1 = 1.0, d2 = 1.0;
  mpisim::run(2, [&](mpisim::Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x1 = ds.solve(u1);
    auto x2 = ds.solve(u2);
    if (comm.rank() == 0) {
      d1 = la::nrm2(la::vsub(x1, x1_seq)) / la::nrm2(x1_seq);
      d2 = la::nrm2(la::vsub(x2, x2_seq)) / la::nrm2(x2_seq);
    }
  });
  EXPECT_LT(d1, 1e-10);
  EXPECT_LT(d2, 1e-10);
}

// The distributed block solve (serving path) must match the sequential
// block solve column for column: the per-level corrections travel as
// [s x B] panels instead of per-column messages, but the arithmetic is
// identical up to reduction order.
TEST(DistributedSolver, BlockSolveMatchesSequentialBlock) {
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 13);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  FastDirectSolver seq(h, opts);
  std::mt19937_64 rng(14);
  const Matrix u = Matrix::random_gaussian(n, 5, rng);
  const Matrix x_seq = seq.solve(u);

  double worst = 1.0;
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    Matrix x = ds.solve(u);
    if (comm.rank() == 0) worst = la::max_abs_diff(x, x_seq);
  });
  EXPECT_LT(worst, 1e-10);
}

}  // namespace
}  // namespace fdks::core
