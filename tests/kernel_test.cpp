// Tests for kernel functions, the lazy kernel-matrix view, and the three
// summation schemes (including GSKS == stored-GEMV parity).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "kernel/gsks.hpp"
#include "kernel/kernel_matrix.hpp"
#include "kernel/kernels.hpp"
#include "kernel/summation.hpp"
#include "la/gemm.hpp"
#include "la/svd.hpp"
#include "obs/obs.hpp"

namespace fdks::kernel {
namespace {

using la::Matrix;
using la::index_t;

Matrix random_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Matrix::random_gaussian(d, n, rng);
}

std::vector<index_t> iota_idx(index_t n, index_t start = 0) {
  std::vector<index_t> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ------------------------------------------------------------ Kernels --

TEST(Kernels, GaussianAtZeroDistanceIsOne) {
  Kernel k = Kernel::gaussian(0.5);
  std::vector<double> x = {1.0, 2.0};
  EXPECT_NEAR(k.eval(x.data(), x.data(), 2), 1.0, 1e-15);
}

TEST(Kernels, GaussianMatchesFormula) {
  Kernel k = Kernel::gaussian(2.0);
  std::vector<double> x = {0.0, 0.0};
  std::vector<double> y = {3.0, 4.0};  // Distance 5.
  EXPECT_NEAR(k.eval(x.data(), y.data(), 2), std::exp(-0.5 * 25.0 / 4.0),
              1e-15);
}

TEST(Kernels, LaplacianMatchesFormula) {
  Kernel k = Kernel::laplacian(2.0);
  std::vector<double> x = {0.0};
  std::vector<double> y = {3.0};
  EXPECT_NEAR(k.eval(x.data(), y.data(), 1), std::exp(-1.5), 1e-15);
}

TEST(Kernels, Matern32MatchesFormula) {
  Kernel k = Kernel::matern32(1.0);
  std::vector<double> x = {0.0};
  std::vector<double> y = {2.0};
  const double r = std::sqrt(3.0) * 2.0;
  EXPECT_NEAR(k.eval(x.data(), y.data(), 1), (1.0 + r) * std::exp(-r), 1e-15);
}

TEST(Kernels, PolynomialMatchesFormula) {
  Kernel k = Kernel::polynomial(1.0, 1.0, 3);
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {3.0, -1.0};  // x.y = 1.
  EXPECT_NEAR(k.eval(x.data(), y.data(), 2), 8.0, 1e-12);  // (1+1)^3.
}

TEST(Kernels, SymmetryHoldsForAllTypes) {
  std::mt19937_64 rng(7);
  Matrix pts = Matrix::random_gaussian(5, 2, rng);
  for (Kernel k : {Kernel::gaussian(0.7), Kernel::laplacian(1.3),
                   Kernel::matern32(0.9), Kernel::polynomial(1.0, 0.5, 2)}) {
    const double kxy = k.eval(pts.col(0), pts.col(1), 5);
    const double kyx = k.eval(pts.col(1), pts.col(0), 5);
    EXPECT_DOUBLE_EQ(kxy, kyx) << k.name();
  }
}

TEST(Kernels, GaussianBandwidthLimits) {
  // Small h: K -> I. Large h: K -> all-ones (paper §I).
  std::vector<double> x = {0.0}, y = {1.0};
  EXPECT_LT(Kernel::gaussian(1e-3).eval(x.data(), y.data(), 1), 1e-300);
  EXPECT_NEAR(Kernel::gaussian(1e3).eval(x.data(), y.data(), 1), 1.0, 1e-6);
}

// ------------------------------------------------------- KernelMatrix --

TEST(KernelMatrix, EntryMatchesDirectEval) {
  Matrix pts = random_points(4, 10, 11);
  Kernel k = Kernel::gaussian(1.0);
  KernelMatrix km(pts, k);
  for (index_t i : {0, 3, 9})
    for (index_t j : {1, 5, 9})
      EXPECT_NEAR(km.entry(i, j), k.eval(pts.col(i), pts.col(j), 4), 1e-14);
}

TEST(KernelMatrix, DiagonalIsOneForRadialKernels) {
  Matrix pts = random_points(8, 6, 12);
  KernelMatrix km(pts, Kernel::gaussian(0.4));
  for (index_t i = 0; i < 6; ++i) EXPECT_NEAR(km.entry(i, i), 1.0, 1e-14);
}

TEST(KernelMatrix, BlockMatchesEntries) {
  Matrix pts = random_points(3, 12, 13);
  KernelMatrix km(pts, Kernel::laplacian(0.8));
  std::vector<index_t> rows = {2, 7, 4};
  std::vector<index_t> cols = {0, 11};
  Matrix b = km.block(rows, cols);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 3; ++i)
      EXPECT_NEAR(b(i, j), km.entry(rows[i], cols[j]), 1e-14);
}

TEST(KernelMatrix, FullIsSymmetric) {
  Matrix pts = random_points(6, 20, 14);
  KernelMatrix km(pts, Kernel::gaussian(1.2));
  Matrix k = km.full();
  EXPECT_LT(la::max_abs_diff(k, k.transposed()), 1e-14);
}

TEST(KernelMatrix, GaussianIsPositiveSemiDefinite) {
  Matrix pts = random_points(4, 15, 15);
  KernelMatrix km(pts, Kernel::gaussian(0.9));
  auto svd = la::svd_jacobi(km.full());
  // PSD symmetric: singular values == eigenvalues >= 0; check smallest
  // is non-negative within roundoff (it equals |lambda_min|, so instead
  // check via x^T K x >= 0 for a few random x).
  std::mt19937_64 rng(16);
  Matrix k = km.full();
  for (int t = 0; t < 5; ++t) {
    Matrix x = Matrix::random_gaussian(15, 1, rng);
    Matrix kx = la::matmul(k, x);
    double q = 0.0;
    for (index_t i = 0; i < 15; ++i) q += x(i, 0) * kx(i, 0);
    EXPECT_GE(q, -1e-10);
  }
  (void)svd;
}

// ----------------------------------------------------------- GSKS -----

class GsksParity : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GsksParity, MatchesMaterializedGemv) {
  const auto [d, m, n] = GetParam();
  Matrix pts = random_points(d, m + n, static_cast<uint64_t>(d * m + n));
  KernelMatrix km(pts, Kernel::gaussian(1.1));
  auto rows = iota_idx(m);
  auto cols = iota_idx(n, m);
  std::mt19937_64 rng(21);
  std::vector<double> u(static_cast<size_t>(n));
  std::normal_distribution<double> dist(0.0, 1.0);
  for (auto& v : u) v = dist(rng);

  std::vector<double> y_ref(static_cast<size_t>(m), 0.25);
  Matrix block = km.block(rows, cols);
  la::gemv(la::Trans::No, 1.0, block, u, 1.0, y_ref);

  std::vector<double> y_gsks(static_cast<size_t>(m), 0.25);
  gsks_apply(km, rows, cols, u, y_gsks);

  for (index_t i = 0; i < m; ++i)
    EXPECT_NEAR(y_gsks[static_cast<size_t>(i)], y_ref[static_cast<size_t>(i)],
                1e-11 * n)
        << "d=" << d << " m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GsksParity,
    ::testing::Values(std::make_tuple(1, 5, 7), std::make_tuple(4, 64, 64),
                      std::make_tuple(8, 65, 63), std::make_tuple(20, 200, 150),
                      std::make_tuple(54, 130, 70), std::make_tuple(3, 1, 1),
                      std::make_tuple(16, 128, 129)));

TEST(Gsks, TransposeMatchesSymmetry) {
  Matrix pts = random_points(5, 30, 22);
  KernelMatrix km(pts, Kernel::matern32(0.8));
  auto rows = iota_idx(12);
  auto cols = iota_idx(18, 12);
  std::vector<double> u(12, 0.0);
  std::mt19937_64 rng(23);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (auto& v : u) v = dist(rng);

  std::vector<double> y1(18, 0.0), y2(18, 0.0);
  gsks_apply_trans(km, rows, cols, u, y1);
  Matrix block = km.block(rows, cols);
  la::gemv(la::Trans::Yes, 1.0, block, u, 1.0, y2);
  for (int i = 0; i < 18; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Gsks, BlockApplyMatchesColumnwise) {
  Matrix pts = random_points(6, 40, 24);
  KernelMatrix km(pts, Kernel::gaussian(0.7));
  auto rows = iota_idx(25);
  auto cols = iota_idx(15, 25);
  std::mt19937_64 rng(25);
  Matrix u = Matrix::random_gaussian(15, 3, rng);
  Matrix y(25, 3);
  gsks_apply_block(km, rows, cols, u, y);
  Matrix exact = la::matmul(km.block(rows, cols), u);
  EXPECT_LT(la::max_abs_diff(y, exact), 1e-11);
}

// Counters are globally gated; flip them on for the duration of a test.
struct ObsOn {
  bool was = obs::enabled();
  ObsOn() { obs::set_enabled(true); }
  ~ObsOn() { obs::set_enabled(was); }
};

TEST(Gsks, BlockApplyShapeMismatchDoesNotCount) {
  ObsOn obs_on;
  // Counting convention (la/gemm.hpp): validate first, count after — a
  // throwing block apply must leave the gsks.* counters untouched.
  Matrix pts = random_points(4, 20, 26);
  KernelMatrix km(pts, Kernel::gaussian(0.7));
  auto rows = iota_idx(12);
  auto cols = iota_idx(8, 12);
  Matrix u(7, 3);  // Wrong row count: needs |cols| = 8.
  Matrix y(12, 3);
  const obs::Snapshot before = obs::snapshot();
  const auto get = [](const obs::Snapshot& s, const char* k) {
    const auto it = s.counters.find(k);
    return it != s.counters.end() ? it->second : 0.0;
  };
  EXPECT_THROW(gsks_apply_block(km, rows, cols, u, y),
               std::invalid_argument);
  const obs::Snapshot after = obs::snapshot();
  EXPECT_DOUBLE_EQ(get(after, "gsks.calls"), get(before, "gsks.calls"));
  EXPECT_DOUBLE_EQ(get(after, "gsks.kernel_evals"),
                   get(before, "gsks.kernel_evals"));
}

TEST(Gsks, BlockApplyCountsKernelEvalsOncePerBatch) {
  ObsOn obs_on;
  // The batching win: one block apply of width B evaluates each kernel
  // tile once, so gsks.kernel_evals grows by m*n — not m*n*B.
  Matrix pts = random_points(4, 30, 27);
  KernelMatrix km(pts, Kernel::gaussian(0.7));
  auto rows = iota_idx(18);
  auto cols = iota_idx(12, 18);
  std::mt19937_64 rng(28);
  Matrix u = Matrix::random_gaussian(12, 5, rng);
  Matrix y(18, 5);
  const obs::Snapshot before = obs::snapshot();
  gsks_apply_block(km, rows, cols, u, y);
  const obs::Snapshot after = obs::snapshot();
  const auto get = [](const obs::Snapshot& s, const char* k) {
    const auto it = s.counters.find(k);
    return it != s.counters.end() ? it->second : 0.0;
  };
  EXPECT_DOUBLE_EQ(get(after, "gsks.kernel_evals"),
                   get(before, "gsks.kernel_evals") + 18.0 * 12.0);
}

// ------------------------------------------------------ KernelBlockOp --

class SchemeParity : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeParity, AllSchemesAgree) {
  const Scheme scheme = GetParam();
  Matrix pts = random_points(7, 50, 31);
  KernelMatrix km(pts, Kernel::gaussian(1.4));
  auto rows = iota_idx(20);
  auto cols = iota_idx(30, 20);
  KernelBlockOp op(&km, rows, cols, scheme);
  KernelBlockOp ref(&km, rows, cols, Scheme::StoredGemv);

  std::mt19937_64 rng(32);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> u(30);
  for (auto& v : u) v = dist(rng);
  std::vector<double> y1(20, 1.0), y2(20, 1.0);
  op.apply(u, y1, 2.0, 0.5);
  ref.apply(u, y2, 2.0, 0.5);
  for (int i = 0; i < 20; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-11);

  std::vector<double> ut(20);
  for (auto& v : ut) v = dist(rng);
  std::vector<double> z1(30, -1.0), z2(30, -1.0);
  op.apply_trans(ut, z1, 1.5, 1.0);
  ref.apply_trans(ut, z2, 1.5, 1.0);
  for (int i = 0; i < 30; ++i) EXPECT_NEAR(z1[i], z2[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeParity,
                         ::testing::Values(Scheme::StoredGemv,
                                           Scheme::ReevalGemm, Scheme::Gsks));

TEST(KernelBlockOp, StorageAccounting) {
  Matrix pts = random_points(3, 30, 41);
  KernelMatrix km(pts, Kernel::gaussian(1.0));
  auto rows = iota_idx(10);
  auto cols = iota_idx(20, 10);
  EXPECT_EQ(KernelBlockOp(&km, rows, cols, Scheme::StoredGemv).stored_bytes(),
            10u * 20u * sizeof(double));
  EXPECT_EQ(KernelBlockOp(&km, rows, cols, Scheme::Gsks).stored_bytes(), 0u);
  EXPECT_EQ(KernelBlockOp(&km, rows, cols, Scheme::ReevalGemm).stored_bytes(),
            0u);
}

TEST(KernelBlockOp, ApplyShapeMismatchThrows) {
  Matrix pts = random_points(2, 10, 42);
  KernelMatrix km(pts, Kernel::gaussian(1.0));
  KernelBlockOp op(&km, iota_idx(4), iota_idx(6, 4), Scheme::StoredGemv);
  std::vector<double> bad(5), y(4);
  EXPECT_THROW(op.apply(bad, y), std::invalid_argument);
}

}  // namespace
}  // namespace fdks::kernel
