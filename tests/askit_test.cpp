// Tests for the hierarchical compression: skeleton invariants, nesting,
// level restriction / frontier structure, and treecode matvec accuracy
// against the dense kernel matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <set>

#include "askit/hmatrix.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"

namespace fdks::askit {
namespace {

using la::index_t;
using la::Matrix;

// Clustered low-intrinsic-dimension points: the regime where the kernel
// matrix is hierarchically compressible.
Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig small_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 32;
  cfg.tol = 1e-7;
  cfg.num_neighbors = 8;
  cfg.seed = 42;
  return cfg;
}

TEST(HMatrix, BuildsAndReportsStats) {
  Matrix p = clustered_points(3, 256, 1);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  EXPECT_EQ(h.n(), 256);
  EXPECT_EQ(h.dim(), 3);
  EXPECT_GT(h.stats().skeletonized_nodes, 0);
  EXPECT_GT(h.stats().frontier_size, 0);
  EXPECT_LE(h.stats().max_rank_used, 32);
}

TEST(HMatrix, SkeletonIsSubsetOfNodePoints) {
  Matrix p = clustered_points(4, 200, 2);
  HMatrix h(p, Kernel::gaussian(0.8), small_config());
  for (index_t id = 0; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    if (!h.is_skeletonized(id)) continue;
    const auto& nd = h.tree().node(id);
    for (index_t s : h.skeleton(id).skel) {
      EXPECT_GE(s, nd.begin);
      EXPECT_LT(s, nd.end);
    }
  }
}

TEST(HMatrix, InternalSkeletonNestedInChildren) {
  // alpha~ is a subset of l~ union r~ (Algorithm II.1).
  Matrix p = clustered_points(3, 300, 3);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  for (index_t id = 0; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    const auto& nd = h.tree().node(id);
    if (nd.is_leaf() || !h.is_skeletonized(id)) continue;
    std::set<index_t> childset;
    for (index_t s : h.skeleton(nd.left).skel) childset.insert(s);
    for (index_t s : h.skeleton(nd.right).skel) childset.insert(s);
    for (index_t s : h.skeleton(id).skel) EXPECT_TRUE(childset.count(s)) << s;
  }
}

TEST(HMatrix, RootIsNeverSkeletonized) {
  Matrix p = clustered_points(2, 128, 4);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  EXPECT_FALSE(h.is_skeletonized(h.tree().root()));
}

TEST(HMatrix, FrontierPartitionsPointRange) {
  Matrix p = clustered_points(5, 400, 5);
  AskitConfig cfg = small_config();
  cfg.level_restriction = 2;
  HMatrix h(p, Kernel::gaussian(0.6), cfg);
  index_t cursor = 0;
  for (index_t id : h.frontier()) {
    const auto& nd = h.tree().node(id);
    EXPECT_EQ(nd.begin, cursor);
    cursor = nd.end;
  }
  EXPECT_EQ(cursor, 400);
}

TEST(HMatrix, LevelRestrictionForcesFrontierDepth) {
  Matrix p = clustered_points(3, 512, 6);
  AskitConfig cfg = small_config();
  cfg.level_restriction = 3;
  HMatrix h(p, Kernel::gaussian(1.0), cfg);
  for (index_t id : h.frontier())
    EXPECT_GE(h.tree().node(id).level, 3);
  // No node above level 3 may be skeletonized.
  for (index_t id = 0; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    if (h.tree().node(id).level < 3 && !h.tree().node(id).is_leaf()) {
      EXPECT_FALSE(h.is_skeletonized(id));
    }
  }
}

TEST(HMatrix, EffectiveSkeletonConcatenatesAboveFrontier) {
  Matrix p = clustered_points(3, 256, 7);
  AskitConfig cfg = small_config();
  cfg.level_restriction = 2;
  HMatrix h(p, Kernel::gaussian(1.0), cfg);
  const auto& root = h.tree().node(0);
  const auto& eff = h.effective_skeleton(0);
  const auto& effl = h.effective_skeleton(root.left);
  const auto& effr = h.effective_skeleton(root.right);
  ASSERT_EQ(eff.size(), effl.size() + effr.size());
  for (size_t i = 0; i < effl.size(); ++i) EXPECT_EQ(eff[i], effl[i]);
  for (size_t i = 0; i < effr.size(); ++i)
    EXPECT_EQ(eff[effl.size() + i], effr[i]);
}

TEST(HMatrix, PermutationRoundTrip) {
  Matrix p = clustered_points(2, 100, 8);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  std::vector<double> v(100);
  std::mt19937_64 rng(9);
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& x : v) x = g(rng);
  auto t = h.to_tree_order(v);
  auto back = h.from_tree_order(t);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], back[i]);
}

// Property sweep: the treecode matvec must approximate the dense matvec
// with error governed by tau, for both matvec forms and several
// bandwidths.
class MatvecAccuracy
    : public ::testing::TestWithParam<std::tuple<double, double, bool>> {};

TEST_P(MatvecAccuracy, CloseToDense) {
  const auto [bandwidth, tol, source_form] = GetParam();
  const index_t n = 300;
  Matrix p = clustered_points(3, n, 10);
  AskitConfig cfg = small_config();
  cfg.tol = tol;
  cfg.max_rank = 64;
  HMatrix h(p, Kernel::gaussian(bandwidth), cfg);

  kernel::KernelMatrix dense(p, Kernel::gaussian(bandwidth));
  Matrix kfull = dense.full();

  std::mt19937_64 rng(11);
  std::vector<double> w(static_cast<size_t>(n));
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& x : w) x = g(rng);

  std::vector<double> y_exact(static_cast<size_t>(n), 0.0);
  la::gemv(la::Trans::No, 1.0, kfull, w, 0.0, y_exact);

  std::vector<double> y_approx(static_cast<size_t>(n), 0.0);
  if (source_form)
    h.apply_source(w, y_approx);
  else
    h.apply(w, y_approx);

  const double err =
      la::nrm2(la::vsub(y_exact, y_approx)) / la::nrm2(y_exact);
  // The sampled ID loses some accuracy relative to tau; two orders of
  // magnitude of slack keeps the test meaningful but robust.
  EXPECT_LT(err, std::max(1e-10, 300.0 * tol))
      << "h=" << bandwidth << " tol=" << tol << " src=" << source_form;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatvecAccuracy,
    ::testing::Values(std::make_tuple(2.0, 1e-5, false),
                      std::make_tuple(2.0, 1e-5, true),
                      std::make_tuple(1.0, 1e-7, false),
                      std::make_tuple(0.5, 1e-5, false),
                      std::make_tuple(1.0, 1e-3, false),
                      std::make_tuple(1.0, 1e-3, true)));

TEST(HMatrix, LambdaShiftAddsDiagonal) {
  const index_t n = 128;
  Matrix p = clustered_points(2, n, 12);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  std::vector<double> w(static_cast<size_t>(n), 1.0);
  std::vector<double> y0(static_cast<size_t>(n)), y1(static_cast<size_t>(n));
  h.apply(w, y0, 0.0);
  h.apply(w, y1, 2.5);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<size_t>(i)] - y0[static_cast<size_t>(i)], 2.5,
                1e-12);
}

TEST(HMatrix, ResidualOfExactSolveIsZeroIsh) {
  // relative_residual(u, u, 0) with w solving K~ w = u must be small;
  // here we just sanity-check the metric with w = 0 => r = 1.
  const index_t n = 64;
  Matrix p = clustered_points(2, n, 13);
  HMatrix h(p, Kernel::gaussian(1.0), small_config());
  std::vector<double> w(static_cast<size_t>(n), 0.0);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  EXPECT_NEAR(h.relative_residual(w, u, 0.5), 1.0, 1e-12);
}

TEST(HMatrix, UniformSamplingFallbackWorks) {
  Matrix p = clustered_points(3, 200, 14);
  AskitConfig cfg = small_config();
  cfg.num_neighbors = 0;  // No kNN: uniform row sampling only.
  HMatrix h(p, Kernel::gaussian(1.5), cfg);
  EXPECT_GT(h.stats().skeletonized_nodes, 0);
  std::vector<double> w(200, 1.0), y(200, 0.0);
  h.apply(w, y);  // Must not throw.
  EXPECT_GT(la::nrm2(y), 0.0);
}

TEST(HMatrix, TinyProblemSingleLeaf) {
  // N smaller than leaf_size: the tree is a root-leaf, nothing is
  // skeletonized, and the matvec must equal the dense product exactly.
  const index_t n = 10;
  Matrix p = clustered_points(2, n, 15);
  AskitConfig cfg = small_config();
  cfg.leaf_size = 32;
  HMatrix h(p, Kernel::gaussian(1.0), cfg);
  kernel::KernelMatrix dense(p, Kernel::gaussian(1.0));
  Matrix kfull = dense.full();
  std::vector<double> w(static_cast<size_t>(n), 1.0);
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  std::vector<double> y_exact(static_cast<size_t>(n), 0.0);
  h.apply(w, y);
  la::gemv(la::Trans::No, 1.0, kfull, w, 0.0, y_exact);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[static_cast<size_t>(i)], y_exact[static_cast<size_t>(i)],
                1e-12);
}

}  // namespace
}  // namespace fdks::askit
