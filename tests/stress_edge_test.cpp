// Stress and failure-injection tests across modules: message storms on
// the runtime, degenerate geometries, adaptive frontiers, and API misuse
// that must fail loudly rather than corrupt state.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "core/factor_tree.hpp"
#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "kernel/summation.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"

namespace fdks {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

// ------------------------------------------------------ mpisim stress --

TEST(MpisimStress, ManyInterleavedMessages) {
  // Every rank sends 200 tagged messages to every other rank in a
  // shuffled order; all must be matched by (src, tag).
  const int p = 4;
  const int msgs = 200;
  mpisim::run(p, [&](mpisim::Comm& c) {
    std::mt19937_64 rng(static_cast<uint64_t>(c.rank()) + 1);
    std::vector<std::pair<int, int>> sends;  // (dest, tag).
    for (int dest = 0; dest < p; ++dest) {
      if (dest == c.rank()) continue;
      for (int t = 0; t < msgs; ++t) sends.emplace_back(dest, t);
    }
    std::shuffle(sends.begin(), sends.end(), rng);
    for (auto [dest, tag] : sends) {
      c.send(dest, tag,
             std::vector<double>{double(c.rank() * 1000 + tag)});
    }
    // Receive in a different shuffled order.
    std::vector<std::pair<int, int>> recvs;
    for (int src = 0; src < p; ++src) {
      if (src == c.rank()) continue;
      for (int t = 0; t < msgs; ++t) recvs.emplace_back(src, t);
    }
    std::shuffle(recvs.begin(), recvs.end(), rng);
    for (auto [src, tag] : recvs) {
      auto m = c.recv(src, tag);
      ASSERT_EQ(m.size(), 1u);
      EXPECT_EQ(m[0], double(src * 1000 + tag));
    }
  });
}

TEST(MpisimStress, CollectivesUnderRepetition) {
  mpisim::run(8, [](mpisim::Comm& c) {
    for (int round = 0; round < 50; ++round) {
      std::vector<double> v{double(c.rank() + round)};
      c.allreduce_sum(v);
      const double expect = 8.0 * round + 28.0;  // sum 0..7 = 28.
      ASSERT_EQ(v[0], expect);
    }
  });
}

// --------------------------------------------------- degenerate inputs --

TEST(Degenerate, AllPointsIdenticalStillFactorizes) {
  // K is the all-ones matrix (rank 1); lambda I + K is well-conditioned
  // for lambda >= 1.
  Matrix p(4, 128, 2.5);
  AskitConfig cfg;
  cfg.leaf_size = 16;
  cfg.max_rank = 16;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 0;
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);
  std::vector<double> u(128, 1.0);
  auto x = solver.solve(u);
  // Exact solution of (I + ones*ones^T/...) actually: K = all ones.
  // (lambda I + K) x = u with u = 1 has x_i = 1 / (lambda + N).
  for (double xi : x) EXPECT_NEAR(xi, 1.0 / (1.0 + 128.0), 1e-10);
}

TEST(Degenerate, CollinearPointsLowIntrinsicDim) {
  // Points on a line in 16-D: ranks should collapse to something tiny.
  const index_t n = 256;
  Matrix p(16, n);
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> dir(16);
  for (auto& v : dir) v = g(rng);
  for (index_t j = 0; j < n; ++j) {
    const double t = g(rng);
    for (index_t i = 0; i < 16; ++i)
      p(i, j) = dir[static_cast<size_t>(i)] * t;
  }
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 64;
  cfg.tol = 1e-6;
  cfg.num_neighbors = 0;
  askit::HMatrix h(p, Kernel::gaussian(2.0), cfg);
  EXPECT_LT(h.stats().max_rank_used, 40);
  core::SolverOptions so;
  so.lambda = 0.5;
  core::FastDirectSolver solver(h, so);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.5), 1e-8);
}

TEST(Degenerate, AdaptiveFrontierOnIncompressibleKernel) {
  // A tiny bandwidth with moderate spread: off-diagonal blocks are
  // essentially zero *relative to themselves*, making relative-rank
  // compression behave adversarially; adaptive_frontier must keep the
  // solve correct regardless of where skeletonization stops.
  const index_t n = 256;
  std::mt19937_64 rng(4);
  Matrix p = Matrix::random_gaussian(6, n, rng);
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 64;
  cfg.tol = 1e-3;
  cfg.num_neighbors = 0;
  cfg.adaptive_frontier = true;
  askit::HMatrix h(p, Kernel::gaussian(0.15), cfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 1.0), 1e-8);
}

TEST(Degenerate, OnePointPerLeaf) {
  const index_t n = 64;
  std::mt19937_64 rng(5);
  Matrix p = Matrix::random_gaussian(3, n, rng);
  AskitConfig cfg;
  cfg.leaf_size = 1;
  cfg.max_rank = 8;
  cfg.tol = 1e-6;
  cfg.num_neighbors = 0;
  askit::HMatrix h(p, Kernel::gaussian(1.5), cfg);
  core::SolverOptions so;
  so.lambda = 2.0;
  core::FastDirectSolver solver(h, so);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 2.0), 1e-8);
}

// ------------------------------------------------------- API misuse ----

TEST(ApiMisuse, SolveBeforeFactorizeThrows) {
  const index_t n = 64;
  std::mt19937_64 rng(6);
  Matrix p = Matrix::random_gaussian(2, n, rng);
  AskitConfig cfg;
  cfg.leaf_size = 16;
  cfg.max_rank = 16;
  cfg.tol = 1e-5;
  cfg.num_neighbors = 0;
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  core::SolverOptions so;
  core::FactorTree ft(h, so);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  EXPECT_THROW(ft.solve_subtree(h.tree().root(), u), std::logic_error);
}

TEST(ApiMisuse, WrongSizeInputsThrow) {
  const index_t n = 128;
  std::mt19937_64 rng(7);
  Matrix p = Matrix::random_gaussian(2, n, rng);
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 32;
  cfg.tol = 1e-5;
  cfg.num_neighbors = 0;
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  core::SolverOptions so;
  core::FastDirectSolver solver(h, so);
  std::vector<double> small(static_cast<size_t>(n - 1), 1.0);
  std::vector<double> out(static_cast<size_t>(n));
  EXPECT_THROW(h.apply(small, out), std::invalid_argument);
  core::HybridOptions ho;
  core::HybridSolver hy(h, ho);
  EXPECT_THROW(hy.solve(small), std::invalid_argument);
}

// ------------------------------------------------ summation edge cases --

TEST(SummationEdge, AlphaBetaCombinations) {
  std::mt19937_64 rng(8);
  Matrix pts = Matrix::random_gaussian(4, 30, rng);
  kernel::KernelMatrix km(pts, Kernel::gaussian(1.0));
  std::vector<index_t> rows = {0, 5, 7};
  std::vector<index_t> cols = {10, 12, 14, 20};
  kernel::KernelBlockOp op(&km, rows, cols, kernel::Scheme::Gsks);
  std::vector<double> u = {1.0, -1.0, 2.0, 0.5};
  std::vector<double> y = {1.0, 1.0, 1.0};
  // y = 0*y + 0*B*u must produce exactly zero.
  op.apply(u, y, 0.0, 0.0);
  for (double v : y) EXPECT_EQ(v, 0.0);
  // beta = 1, alpha = 0: no-op.
  y = {3.0, 4.0, 5.0};
  op.apply(u, y, 0.0, 1.0);
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[2], 5.0);
}

TEST(SummationEdge, SingleRowSingleCol) {
  std::mt19937_64 rng(9);
  Matrix pts = Matrix::random_gaussian(3, 5, rng);
  kernel::KernelMatrix km(pts, Kernel::gaussian(0.9));
  std::vector<index_t> rows = {2};
  std::vector<index_t> cols = {4};
  std::vector<double> u = {2.0};
  std::vector<double> y = {0.0};
  kernel::gsks_apply(km, rows, cols, u, y);
  EXPECT_NEAR(y[0], 2.0 * km.entry(2, 4), 1e-14);
}

// ------------------------------------- hybrid under adaptive frontier --

TEST(HybridAdaptive, WorksWithAdaptiveNotLevelFrontier) {
  // Frontier produced by compression failure (adaptive), not by a fixed
  // level: the hybrid machinery must handle ragged frontiers.
  const index_t n = 384;
  std::mt19937_64 rng(10);
  Matrix p = Matrix::random_gaussian(8, n, rng);
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 24;  // Tight cap: some branches stop compressing.
  cfg.tol = 1e-4;
  cfg.num_neighbors = 0;
  cfg.adaptive_frontier = true;
  askit::HMatrix h(p, Kernel::gaussian(1.2), cfg);
  core::HybridOptions ho;
  ho.direct.lambda = 1.5;
  ho.gmres.rtol = 1e-11;
  ho.gmres.max_iters = 400;
  core::HybridSolver hy(h, ho);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  auto x = hy.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 1.5), 1e-8);
}

}  // namespace
}  // namespace fdks
