// Serving soak: a loaded ServeEngine (bounded queue, deadlines, degraded
// watermark) running while a fault-injected mpisim world churns in the
// same process. The engine must keep every contract under pressure:
// every admitted future resolves with a value or a structured
// ServeError — never a hang, never an unstructured exception — and the
// background chaos must neither starve the serving path nor corrupt a
// served answer.
//
// Wired as the "chaos"-labelled ctest (with serve + fault labels too);
// scripts/serve_soak.sh builds and runs it. Environment knobs:
//   FDKS_SERVE_SOAK_SECONDS  submit-loop duration     (default 2)
//   FDKS_SERVE_SOAK_N        problem size             (default 256)
//   FDKS_SERVE_SOAK_THREADS  submitter threads        (default 3)
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "mpisim/runtime.hpp"
#include "serve/engine.hpp"

namespace fdks::serve {
namespace {

using askit::AskitConfig;
using core::FastDirectSolver;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

long env_long(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  const long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? v : fallback;
}

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

TEST(ServeSoak, LoadedEngineSurvivesFaultInjectedNeighbors) {
  const long seconds = env_long("FDKS_SERVE_SOAK_SECONDS", 2);
  const index_t n =
      static_cast<index_t>(env_long("FDKS_SERVE_SOAK_N", 256));
  const long submitters = env_long("FDKS_SERVE_SOAK_THREADS", 3);

  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  Matrix pts = clustered_points(3, n, 29);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), cfg);
  core::SolverOptions sopts;
  sopts.lambda = 1.0;
  auto solver = std::make_shared<const FastDirectSolver>(h, sopts);

  ServeOptions so;
  so.batch_max = 8;
  so.queue_max = 32;
  so.degrade_watermark = 0.75;
  so.default_deadline = std::chrono::milliseconds(2000);
  ServeEngine engine(solver, so);

  const auto stop_at = std::chrono::steady_clock::now() +
                       std::chrono::seconds(seconds);
  std::atomic<bool> stop{false};

  // Background chaos: a fault-injected mpisim world repeatedly runs a
  // distributed solve in-process, contending for cores and exercising
  // the timeout/retry machinery while the engine serves.
  std::atomic<long> chaos_runs{0};
  std::thread chaos([&] {
    std::vector<double> u(static_cast<size_t>(n), 1.0);
    uint64_t seed = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      mpisim::WorldOptions wo;
      wo.faults.seed = ++seed;
      wo.faults.drop_fraction = 0.05;
      wo.faults.corrupt_fraction = 0.02;
      wo.reliable.enabled = true;
      wo.reliable.ack_timeout = std::chrono::milliseconds(25);
      try {
        mpisim::run(
            4,
            [&](mpisim::Comm& comm) {
              core::DistributedSolver ds(h, sopts, comm);
              (void)ds.solve(u);
            },
            wo);
      } catch (const std::exception&) {
        // Out-of-budget chaos cells may fail; the soak only requires
        // the serving engine next door to stay correct.
      }
      chaos_runs.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Foreground load: submitter threads push random right-hand sides as
  // fast as admission control lets them, tallying every outcome.
  std::atomic<long> ok{0}, degraded{0}, shed{0}, expired{0}, other{0};
  std::atomic<long> unstructured{0}, hung{0};
  std::vector<std::thread> ts;
  for (long t = 0; t < submitters; ++t) {
    ts.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(77 + t));
      std::normal_distribution<double> g(0.0, 1.0);
      while (std::chrono::steady_clock::now() < stop_at) {
        std::vector<double> rhs(static_cast<size_t>(n));
        for (auto& v : rhs) v = g(rng);
        std::future<ServeResult> fut;
        try {
          fut = engine.submit(std::move(rhs));
        } catch (const ServeError& e) {
          (e.code() == ServeCode::Overloaded ? shed : other)
              .fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          continue;
        }
        if (fut.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          hung.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        try {
          const ServeResult res = fut.get();
          (res.degraded() ? degraded : ok)
              .fetch_add(1, std::memory_order_relaxed);
        } catch (const ServeError& e) {
          (e.code() == ServeCode::DeadlineExceeded ? expired : other)
              .fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          unstructured.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  stop.store(true, std::memory_order_relaxed);
  chaos.join();
  engine.drain();

  std::printf(
      "serve soak: %lds, n=%lld, %ld submitters | ok %ld degraded %ld "
      "shed %ld expired %ld other %ld | chaos runs %ld\n",
      seconds, static_cast<long long>(n), submitters, ok.load(),
      degraded.load(), shed.load(), expired.load(), other.load(),
      chaos_runs.load());

  EXPECT_EQ(hung.load(), 0) << "a future never resolved";
  EXPECT_EQ(unstructured.load(), 0)
      << "a request failed without a ServeError";
  EXPECT_GT(ok.load() + degraded.load(), 0)
      << "the engine served nothing under load";
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.requests,
            static_cast<std::uint64_t>(ok.load() + degraded.load() +
                                       expired.load() + other.load()));
}

}  // namespace
}  // namespace fdks::serve
