// Unit tests for the dense matrix container and level-1 kernels.
#include <gtest/gtest.h>

#include <random>

#include "la/blas1.hpp"
#include "la/matrix.hpp"

namespace fdks::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 3.5);
  EXPECT_EQ(m(0, 0), 3.5);
  EXPECT_EQ(m(1, 1), 3.5);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 4;
  const double* d = m.data();
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 2);
  EXPECT_EQ(d[2], 3);
  EXPECT_EQ(d[3], 4);
  EXPECT_EQ(m.col(1), d + 3);
}

TEST(Matrix, IdentityDiagonal) {
  Matrix i = Matrix::identity(4);
  for (index_t r = 0; r < 4; ++r)
    for (index_t c = 0; c < 4; ++c)
      EXPECT_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, BlockExtractsSubmatrix) {
  Matrix m(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(10 * i + j);
  Matrix b = m.block(1, 2, 2, 2);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_EQ(b(0, 0), 12);
  EXPECT_EQ(b(1, 1), 23);
}

TEST(Matrix, SetBlockWritesBack) {
  Matrix m(3, 3);
  Matrix b(2, 2, 7.0);
  m.set_block(1, 1, b);
  EXPECT_EQ(m(1, 1), 7.0);
  EXPECT_EQ(m(2, 2), 7.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = -2.0;
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(1, 0), 5.0);
  EXPECT_EQ(t(2, 1), -2.0);
}

TEST(Matrix, SelectColsGathersInOrder) {
  Matrix m(2, 4);
  for (index_t j = 0; j < 4; ++j) m(0, j) = static_cast<double>(j);
  std::vector<index_t> idx = {3, 1};
  Matrix s = m.select_cols(idx);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(0, 1), 1.0);
}

TEST(Matrix, SelectRowsGathersInOrder) {
  Matrix m(4, 2);
  for (index_t i = 0; i < 4; ++i) m(i, 1) = static_cast<double>(i);
  std::vector<index_t> idx = {2, 0, 0};
  Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s(0, 1), 2.0);
  EXPECT_EQ(s(1, 1), 0.0);
  EXPECT_EQ(s(2, 1), 0.0);
}

TEST(Matrix, RandomIsDeterministicGivenSeed) {
  std::mt19937_64 r1(42), r2(42);
  Matrix a = Matrix::random_gaussian(5, 5, r1);
  Matrix b = Matrix::random_gaussian(5, 5, r2);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(Matrix, MaxAbsDiffThrowsOnShapeMismatch) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(Matrix, AddScaled) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  Matrix c = add_scaled(a, -0.5, b);
  EXPECT_EQ(c(0, 0), 0.0);
  EXPECT_EQ(c(1, 1), 0.0);
}

TEST(Blas1, DotAndNorm) {
  std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
}

TEST(Blas1, Nrm2AvoidsOverflow) {
  std::vector<double> x = {1e200, 1e200};
  EXPECT_NEAR(nrm2(x) / (std::sqrt(2.0) * 1e200), 1.0, 1e-14);
}

TEST(Blas1, Nrm2EmptyAndZero) {
  std::vector<double> empty;
  EXPECT_EQ(nrm2(empty), 0.0);
  std::vector<double> z = {0.0, 0.0};
  EXPECT_EQ(nrm2(z), 0.0);
}

TEST(Blas1, AxpyAccumulates) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[1], 24.0);
}

TEST(Blas1, ScalScales) {
  std::vector<double> x = {1.0, -2.0};
  scal(-3.0, x);
  EXPECT_EQ(x[0], -3.0);
  EXPECT_EQ(x[1], 6.0);
}

TEST(Blas1, IamaxFindsLargestMagnitude) {
  std::vector<double> x = {1.0, -5.0, 3.0};
  EXPECT_EQ(iamax(x), 1);
  std::vector<double> empty;
  EXPECT_EQ(iamax(empty), -1);
}

TEST(Blas1, VaddVsub) {
  std::vector<double> a = {1, 2}, b = {3, 5};
  auto s = vadd(a, b);
  auto d = vsub(a, b);
  EXPECT_EQ(s[0], 4.0);
  EXPECT_EQ(s[1], 7.0);
  EXPECT_EQ(d[0], -2.0);
  EXPECT_EQ(d[1], -3.0);
  std::vector<double> c = {1};
  EXPECT_THROW(vadd(a, c), std::invalid_argument);
}

}  // namespace
}  // namespace fdks::la
