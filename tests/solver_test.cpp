// Tests for the fast direct solver: residuals against the compressed and
// dense operators, telescoped == baseline equivalence, level-restricted
// direct factorization, lambda sweeps, and stability detection.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/solver.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"
#include "la/lu.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

// The factorization inverts K~ exactly (up to roundoff), so the residual
// measured against the *compressed* operator must be near machine eps.
TEST(FastDirectSolver, ResidualAgainstCompressedOperatorIsTiny) {
  const index_t n = 300;
  Matrix p = clustered_points(3, n, 1);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  SolverOptions opts;
  opts.lambda = 0.5;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 2);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.5), 1e-10);
}

// Against the *dense* matrix the residual is governed by the
// compression tolerance tau.
TEST(FastDirectSolver, ResidualAgainstDenseTracksTau) {
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 3);
  const Kernel k = Kernel::gaussian(1.0);
  askit::HMatrix h(p, k, tight_config());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 4);
  auto x = solver.solve(u);

  kernel::KernelMatrix dense(p, k);
  Matrix kfull = dense.full();
  std::vector<double> r(u.begin(), u.end());
  la::gemv(la::Trans::No, -1.0, kfull, x, 1.0, r);
  la::axpy(-1.0, std::vector<double>(x.begin(), x.end()), r);  // -lambda x.
  // r = u - (K + I) x with lambda = 1.
  EXPECT_LT(la::nrm2(r) / la::nrm2(u), 1e-4);
}

TEST(FastDirectSolver, MatchesDenseLuOnSmallProblem) {
  const index_t n = 200;
  Matrix p = clustered_points(2, n, 5);
  const Kernel k = Kernel::gaussian(1.5);
  AskitConfig cfg = tight_config();
  cfg.tol = 1e-12;
  cfg.max_rank = 64;
  askit::HMatrix h(p, k, cfg);
  SolverOptions opts;
  opts.lambda = 2.0;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 6);
  auto x = solver.solve(u);

  kernel::KernelMatrix dense(p, k);
  Matrix a = dense.full();
  for (index_t i = 0; i < n; ++i) a(i, i) += 2.0;
  la::LuFactor f = la::lu_factor(a);
  std::vector<double> xd = u;
  la::lu_solve(f, xd);
  const double relerr = la::nrm2(la::vsub(x, xd)) / la::nrm2(xd);
  EXPECT_LT(relerr, 1e-6);
}

// The headline algorithmic claim: the telescoped O(N log N) factorization
// constructs *exactly the same* factorization as the [36] subtree
// baseline, up to roundoff.
TEST(FastDirectSolver, TelescopedEqualsSubtreeBaseline) {
  const index_t n = 280;
  Matrix p = clustered_points(3, n, 8);
  askit::HMatrix h(p, Kernel::gaussian(0.9), tight_config());
  SolverOptions t_opts, s_opts;
  t_opts.lambda = s_opts.lambda = 0.3;
  t_opts.algo = FactorizationAlgo::Telescoped;
  s_opts.algo = FactorizationAlgo::Subtree;
  FastDirectSolver tele(h, t_opts);
  FastDirectSolver base(h, s_opts);
  auto u = random_vec(n, 9);
  auto xt = tele.solve(u);
  auto xs = base.solve(u);
  const double diff = la::nrm2(la::vsub(xt, xs)) / la::nrm2(xt);
  EXPECT_LT(diff, 1e-10);
}

TEST(FastDirectSolver, PhatFactorsAgreeBetweenAlgorithms) {
  const index_t n = 192;
  Matrix p = clustered_points(2, n, 10);
  askit::HMatrix h(p, Kernel::gaussian(1.1), tight_config());
  SolverOptions t_opts, s_opts;
  t_opts.lambda = s_opts.lambda = 0.7;
  s_opts.algo = FactorizationAlgo::Subtree;
  FastDirectSolver tele(h, t_opts);
  FastDirectSolver base(h, s_opts);
  for (index_t id = 1; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    const Matrix& pt = tele.factor_tree().factor(id).phat;
    const Matrix& pb = base.factor_tree().factor(id).phat;
    ASSERT_EQ(pt.rows(), pb.rows());
    ASSERT_EQ(pt.cols(), pb.cols());
    if (pt.size() > 0) {
      EXPECT_LT(la::max_abs_diff(pt, pb), 1e-9);
    }
  }
}

// Property sweep over lambda and bandwidth: the solver must invert its
// own compressed operator to near machine precision whenever the
// factorization is stable.
class LambdaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LambdaSweep, CompressedResidualTiny) {
  const auto [lambda, bandwidth] = GetParam();
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 11);
  askit::HMatrix h(p, Kernel::gaussian(bandwidth), tight_config());
  SolverOptions opts;
  opts.lambda = lambda;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 12);
  auto x = solver.solve(u);
  if (solver.stability().stable()) {
    EXPECT_LT(h.relative_residual(x, u, lambda), 1e-8)
        << "lambda=" << lambda << " h=" << bandwidth;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LambdaSweep,
    ::testing::Values(std::make_tuple(10.0, 1.0), std::make_tuple(1.0, 1.0),
                      std::make_tuple(0.1, 1.0), std::make_tuple(1.0, 0.3),
                      std::make_tuple(1.0, 3.0), std::make_tuple(0.01, 2.0)));

TEST(FastDirectSolver, LevelRestrictedDirectMatchesUnrestricted) {
  // The expanded direct factorization above the frontier must invert the
  // same (target-form) operator that the level-restricted HMatrix
  // defines.
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 13);
  AskitConfig cfg = tight_config();
  cfg.level_restriction = 2;
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  EXPECT_GT(h.frontier().size(), 1u);
  SolverOptions opts;
  opts.lambda = 0.5;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 14);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.5), 1e-10);
}

TEST(FastDirectSolver, BlockSolveMatchesVectorSolve) {
  const index_t n = 128;
  Matrix p = clustered_points(2, n, 15);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver solver(h, opts);
  std::mt19937_64 rng(16);
  Matrix u = Matrix::random_gaussian(n, 3, rng);
  Matrix x = solver.solve(u);
  for (index_t j = 0; j < 3; ++j) {
    std::vector<double> uc(u.col(j), u.col(j) + n);
    auto xc = solver.solve(uc);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), xc[static_cast<size_t>(i)], 1e-11);
  }
}

class SchemeEquivalence : public ::testing::TestWithParam<kernel::Scheme> {};

TEST_P(SchemeEquivalence, AllSummationSchemesGiveSameSolution) {
  const index_t n = 160;
  Matrix p = clustered_points(3, n, 17);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  SolverOptions ref_opts, opts;
  ref_opts.lambda = opts.lambda = 0.4;
  ref_opts.scheme = kernel::Scheme::StoredGemv;
  opts.scheme = GetParam();
  FastDirectSolver ref(h, ref_opts);
  FastDirectSolver alt(h, opts);
  auto u = random_vec(n, 18);
  auto xr = ref.solve(u);
  auto xa = alt.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(xr, xa)) / la::nrm2(xr), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeEquivalence,
                         ::testing::Values(kernel::Scheme::StoredGemv,
                                           kernel::Scheme::ReevalGemm,
                                           kernel::Scheme::Gsks));

TEST(FastDirectSolver, StabilityFlagsTinyLambdaNarrowBandwidth) {
  // Narrow bandwidth, lambda -> 0: the regime §III identifies as
  // potentially unstable. We only require that the detector runs and
  // reports a finite diagnostic — and that a healthy configuration is
  // NOT flagged.
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 19);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  SolverOptions good;
  good.lambda = 1.0;
  FastDirectSolver s_good(h, good);
  EXPECT_TRUE(s_good.stability().stable());
  EXPECT_GT(s_good.stability().min_leaf_pivot_ratio, 0.0);
  EXPECT_GT(s_good.stability().min_z_rcond, 0.0);
}

TEST(FastDirectSolver, FactorBytesPositiveAndSchemeDependent) {
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 20);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  SolverOptions stored, matfree;
  stored.scheme = kernel::Scheme::StoredGemv;
  matfree.scheme = kernel::Scheme::Gsks;
  FastDirectSolver s1(h, stored);
  FastDirectSolver s2(h, matfree);
  EXPECT_GT(s1.factor_bytes(), s2.factor_bytes());
  EXPECT_GT(s2.factor_bytes(), 0u);
}

TEST(FastDirectSolver, SingleLeafTreeIsExactDenseSolve) {
  const index_t n = 20;
  Matrix p = clustered_points(2, n, 21);
  AskitConfig cfg = tight_config();
  cfg.leaf_size = 64;  // n < leaf_size: single-leaf tree.
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  SolverOptions opts;
  opts.lambda = 0.1;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 22);
  auto x = solver.solve(u);
  kernel::KernelMatrix dense(p, Kernel::gaussian(1.0));
  Matrix a = dense.full();
  for (index_t i = 0; i < n; ++i) a(i, i) += 0.1;
  la::LuFactor f = la::lu_factor(a);
  std::vector<double> xd = u;
  la::lu_solve(f, xd);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<size_t>(i)], xd[static_cast<size_t>(i)], 1e-10);
}

}  // namespace
}  // namespace fdks::core
