// Fault-recovery tests spanning all three layers: the reliable
// transport must *survive* message faults (not just diagnose them), the
// checkpoint layer must let a re-execution resume completed
// factorization work, and the supervisor must stitch both together so a
// killed rank is recovered within the retry budget with a full attempt
// history.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <random>
#include <unistd.h>

#include "core/dist_solver.hpp"
#include "core/recovery.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"
#include "obs/obs.hpp"

namespace fdks {
namespace {

namespace fs = std::filesystem;
using askit::AskitConfig;
using core::DistributedSolver;
using core::RecoveryOptions;
using core::RecoveryReport;
using core::SolverOptions;
using kernel::Kernel;
using la::Matrix;
using la::index_t;
using mpisim::Comm;
using mpisim::TimeoutError;
using mpisim::WorldOptions;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig dist_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 5;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

double counter(const std::map<std::string, double>& c, const char* name) {
  const auto it = c.find(name);
  return it == c.end() ? 0.0 : it->second;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdks_recovery_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// The acceptance scenario for layer 1: a distributed solve under a
// drop + corrupt plan COMPLETES under reliable transport with the same
// residual tolerance as the fault-free run. (Without it, the same plan
// is the SeededDropPlanSurfacesAsTimeouts failure.)
TEST_F(RecoveryTest, ReliableTransportSurvivesDropAndCorruptPlan) {
  obs::set_enabled(true);
  obs::reset();
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  auto u = random_vec(n, 2);

  std::vector<double> x_clean;
  double res_clean = 0.0;
  mpisim::run(4, [&](Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      x_clean = std::move(x);
      res_clean = ds.last_status().residual;
    }
  });

  WorldOptions wo;
  wo.faults.seed = 7;
  wo.faults.drop_fraction = 0.05;
  wo.faults.corrupt_fraction = 0.02;
  wo.reliable.enabled = true;
  wo.reliable.ack_timeout = std::chrono::milliseconds(25);

  std::vector<double> x_faulty;
  core::SolveStatus status;
  mpisim::run(
      4,
      [&](Comm& comm) {
        DistributedSolver ds(h, opts, comm);
        auto x = ds.solve(u);
        if (comm.rank() == 0) {
          x_faulty = std::move(x);
          status = ds.last_status();
        }
      },
      wo);

  ASSERT_EQ(x_faulty.size(), x_clean.size());
  EXPECT_TRUE(status.ok()) << status.message();
  // Retransmission re-delivers the original payload, so the arithmetic
  // is untouched: same answer, same residual, to roundoff.
  const double diff =
      la::nrm2(la::vsub(x_faulty, x_clean)) / la::nrm2(x_clean);
  EXPECT_LT(diff, 1e-12) << "reliable transport must mask, not mutate";
  EXPECT_LE(status.residual, std::max(1e-12, 2.0 * res_clean));

  // Faults were actually injected and actually recovered from. Exact
  // counts are timing-dependent (retransmits consume fresh sequence
  // numbers), so assert lower bounds only.
  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counter(counters, "mpisim.fault.injected"), 1.0);
  EXPECT_GE(counter(counters, "mpisim.recover.retransmit"), 1.0);
  EXPECT_GE(counter(counters, "mpisim.recover.recovered"), 1.0);
  obs::set_enabled(false);
}

TEST_F(RecoveryTest, ReliableTransportSuppressesDuplicates) {
  obs::set_enabled(true);
  obs::reset();
  WorldOptions wo;
  wo.faults.seed = 3;
  wo.faults.duplicate_fraction = 0.5;
  wo.reliable.enabled = true;

  mpisim::run(
      2,
      [](Comm& c) {
        for (int i = 0; i < 50; ++i) {
          if (c.rank() == 0) {
            c.send(1, i, std::vector<double>{double(i)});
            EXPECT_EQ(c.recv(1, i).at(0), double(-i));
          } else {
            EXPECT_EQ(c.recv(0, i).at(0), double(i));
            c.send(0, i, std::vector<double>{double(-i)});
          }
        }
      },
      wo);

  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counter(counters, "mpisim.fault.duplicate"), 1.0);
  EXPECT_GE(counter(counters, "mpisim.recover.duplicate_suppressed"), 1.0);
  obs::set_enabled(false);
}

TEST_F(RecoveryTest, RetryBudgetExhaustionThrowsDescriptiveTimeout) {
  obs::set_enabled(true);
  obs::reset();
  WorldOptions wo;
  wo.faults.seed = 9;
  wo.faults.drop_fraction = 1.0;  // Nothing gets through, ever.
  wo.reliable.enabled = true;
  wo.reliable.ack_timeout = std::chrono::milliseconds(10);
  wo.reliable.max_retries = 2;
  wo.reliable.max_backoff = std::chrono::milliseconds(40);

  bool caught = false;
  try {
    mpisim::run(
        2,
        [](Comm& c) {
          // Rank 1 never listens, so only the sender fails and its
          // TimeoutError is rethrown unwrapped.
          if (c.rank() == 0) c.send(1, 5, std::vector<double>{1.0});
        },
        wo);
  } catch (const TimeoutError& e) {
    caught = true;
    EXPECT_EQ(e.waiting_rank(), 0);
    EXPECT_EQ(e.src_rank(), 1);
    const std::string what = e.what();
    EXPECT_NE(what.find("acknowledgment"), std::string::npos) << what;
    EXPECT_NE(what.find("retries exhausted"), std::string::npos) << what;
  }
  EXPECT_TRUE(caught) << "a 100% drop plan must exhaust the retry budget";
  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counter(counters, "mpisim.recover.retransmit"), 2.0);
  EXPECT_GE(counter(counters, "mpisim.recover.exhausted"), 1.0);
  obs::set_enabled(false);
}

// The acceptance scenario for layers 2+3: a kill_rank fault is survived
// by supervised re-execution, and the retry resumes the local
// factorization from the checkpoints the first attempt persisted.
TEST_F(RecoveryTest, KillRankSurvivedViaCheckpointRestart) {
  obs::set_enabled(true);
  obs::reset();
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 11);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), dist_config());
  SolverOptions opts;
  opts.lambda = 0.7;
  opts.checkpoint_dir = dir_.string();
  auto u = random_vec(n, 12);

  std::vector<double> x_clean;
  {
    SolverOptions clean = opts;
    clean.checkpoint_dir.clear();
    mpisim::run(4, [&](Comm& comm) {
      DistributedSolver ds(h, clean, comm);
      auto x = ds.solve(u);
      if (comm.rank() == 0) x_clean = std::move(x);
    });
  }

  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(600);
  wo.faults.kill_rank = 2;
  wo.faults.kill_after_ops = 8;  // Dies in the distributed factor phase.

  std::vector<double> x_recovered;
  core::SolveStatus status;
  RecoveryOptions ropts;
  ropts.backoff = std::chrono::milliseconds(10);
  RecoveryReport report = core::run_with_recovery(
      4,
      [&](Comm& comm) {
        DistributedSolver ds(h, opts, comm);
        auto x = ds.solve(u);
        if (comm.rank() == 0) {
          x_recovered = std::move(x);
          status = ds.last_status();
        }
      },
      wo, ropts);

  ASSERT_TRUE(report.succeeded) << report.message();
  ASSERT_EQ(report.attempts_used(), 2) << report.message();
  EXPECT_FALSE(report.attempts[0].succeeded);
  EXPECT_NE(report.attempts[0].error.find("killed"), std::string::npos)
      << report.attempts[0].error;
  EXPECT_TRUE(report.attempts[1].succeeded);
  EXPECT_GT(report.attempts[0].seconds, 0.0);

  ASSERT_EQ(x_recovered.size(), x_clean.size());
  EXPECT_TRUE(status.ok()) << status.message();
  const double diff =
      la::nrm2(la::vsub(x_recovered, x_clean)) / la::nrm2(x_clean);
  EXPECT_LT(diff, 1e-12) << "recovered run must match the clean answer";

  const auto counters = obs::snapshot().counters;
  EXPECT_EQ(counter(counters, "recover.attempts"), 2.0);
  EXPECT_EQ(counter(counters, "recover.recovered_runs"), 1.0);
  EXPECT_GE(counter(counters, "mpisim.fault.kill"), 1.0);
  // The retry resumed from checkpoints written by the first attempt.
  EXPECT_GE(counter(counters, "ckpt.saved"), 1.0);
  EXPECT_GE(counter(counters, "ckpt.loaded"), 1.0);
  obs::set_enabled(false);
}

TEST_F(RecoveryTest, PersistentFaultExhaustsBudgetWithFullHistory) {
  obs::set_enabled(true);
  obs::reset();
  WorldOptions wo;
  wo.timeout = std::chrono::milliseconds(200);
  wo.faults.kill_rank = 1;
  wo.faults.kill_after_ops = 2;

  RecoveryOptions ropts;
  ropts.max_attempts = 2;
  ropts.backoff = std::chrono::milliseconds(5);
  ropts.clear_kill_on_retry = false;  // The fault is persistent.

  RecoveryReport report = core::run_with_recovery(
      4,
      [](Comm& c) {
        for (int round = 0; round < 8; ++round) c.barrier();
      },
      wo, ropts);

  EXPECT_FALSE(report.succeeded);
  ASSERT_EQ(report.attempts_used(), 2);
  for (const auto& a : report.attempts) {
    EXPECT_FALSE(a.succeeded);
    EXPECT_NE(a.error.find("killed"), std::string::npos) << a.error;
  }
  EXPECT_FALSE(report.error.empty());
  const std::string msg = report.message();
  EXPECT_NE(msg.find("failed after 2 attempts"), std::string::npos) << msg;

  const auto counters = obs::snapshot().counters;
  EXPECT_EQ(counter(counters, "recover.attempts"), 2.0);
  EXPECT_GE(counter(counters, "recover.exhausted_runs"), 1.0);
  obs::set_enabled(false);
}

TEST_F(RecoveryTest, NonRetryableExceptionsPropagateUnchanged) {
  WorldOptions wo;
  EXPECT_THROW(core::run_with_recovery(
                   2,
                   [](Comm& c) {
                     if (c.rank() == 0)
                       throw std::logic_error("bad configuration");
                   },
                   wo),
               std::logic_error);
}

TEST_F(RecoveryTest, RejectsNonPositiveAttemptBudget) {
  WorldOptions wo;
  RecoveryOptions ropts;
  ropts.max_attempts = 0;
  EXPECT_THROW(core::run_with_recovery(2, [](Comm&) {}, wo, ropts),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdks
