// Overload-resilience tests for the serving path: admission control and
// load shedding, per-request deadlines with cooperative cancellation,
// poison-request isolation, the degraded GMRES-only fallback, the
// factor-cache circuit breaker and byte budget, and the engine
// shutdown/destruction paths. The concurrency-sensitive cases run under
// the `fault` ctest label so the TSan job exercises them; everything
// here also carries the `serve` label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/solver.hpp"
#include "iterative/gmres.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"

namespace fdks::serve {
namespace {

using askit::AskitConfig;
using core::CancelledError;
using core::CancelToken;
using core::FastDirectSolver;
using kernel::Kernel;
using la::Matrix;
using la::index_t;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

std::vector<double> random_rhs(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> rhs(static_cast<size_t>(n));
  for (auto& v : rhs) v = g(rng);
  return rhs;
}

struct ServeFixture {
  Matrix p;
  askit::HMatrix h;
  std::shared_ptr<const FastDirectSolver> solver;
  explicit ServeFixture(index_t n, double lambda = 1.0, uint64_t seed = 31)
      : p(clustered_points(3, n, seed)),
        h(p, Kernel::gaussian(1.0), tight_config()) {
    core::SolverOptions opts;
    opts.lambda = lambda;
    solver = std::make_shared<FastDirectSolver>(h, opts);
  }
};

/// Collect a ServeError from a future expected to fail; nullopt if the
/// future yielded a value instead.
std::optional<ServeCode> error_code(std::future<ServeResult>& fut) {
  try {
    (void)fut.get();
    return std::nullopt;
  } catch (const ServeError& e) {
    return e.code();
  }
}

// ---- Cancellation primitive -----------------------------------------

TEST(CancelToken, DefaultNeverExpiresAndCheckPasses) {
  CancelToken t;
  EXPECT_FALSE(t.has_deadline());
  EXPECT_FALSE(t.expired());
  EXPECT_NO_THROW(t.check("test"));
  t.cancel();  // No-op on a non-cancellable token.
  EXPECT_FALSE(t.expired());
}

TEST(CancelToken, DeadlineExpiresAndThrows) {
  const CancelToken t = CancelToken::after(milliseconds(0));
  EXPECT_TRUE(t.has_deadline());
  EXPECT_TRUE(t.expired());
  EXPECT_THROW(t.check("test"), CancelledError);
  EXPECT_EQ(t.remaining(), CancelToken::clock::duration::zero());
}

TEST(CancelToken, ManualCancelSharedAcrossCopies) {
  const CancelToken t = CancelToken::manual();
  const CancelToken copy = t;
  EXPECT_FALSE(copy.expired());
  t.cancel();
  EXPECT_TRUE(copy.expired());
  EXPECT_THROW(copy.check("test"), CancelledError);
}

TEST(CancelToken, GmresAbortsOnExpiredToken) {
  const index_t n = 64;
  const CancelToken tok = CancelToken::after(milliseconds(0));
  iter::GmresOptions g;
  g.cancel = &tok;
  const std::vector<double> b(static_cast<size_t>(n), 1.0);
  const auto identity = [](std::span<const double> in,
                           std::span<double> out) {
    std::copy(in.begin(), in.end(), out.begin());
  };
  EXPECT_THROW(iter::gmres(n, identity, b, g), CancelledError);
}

TEST(CancelToken, DirectSolveAbortsOnExpiredToken) {
  ServeFixture fx(256);
  const CancelToken tok = CancelToken::after(milliseconds(0));
  const std::vector<double> rhs = random_rhs(fx.h.n(), 51);
  EXPECT_THROW(
      (void)fx.solver->solve(std::span<const double>(rhs), &tok),
      CancelledError);
  Matrix u(fx.h.n(), 2);
  EXPECT_THROW((void)fx.solver->solve(u, &tok), CancelledError);
}

// ---- Admission control / load shedding ------------------------------

TEST(ServeRobustness, SaturationEveryRequestResolvesStructurally) {
  ServeFixture fx(256);
  ServeOptions so;
  so.batch_max = 4;
  so.queue_max = 8;
  so.start_paused = true;
  ServeEngine engine(fx.solver, so);

  constexpr int kOffered = 32;
  std::vector<std::future<ServeResult>> futs;
  int shed = 0;
  for (int r = 0; r < kOffered; ++r) {
    try {
      futs.push_back(engine.submit(
          random_rhs(fx.h.n(), static_cast<uint64_t>(100 + r))));
    } catch (const ServeError& e) {
      EXPECT_EQ(e.code(), ServeCode::Overloaded);
      ++shed;
    }
  }
  // Offered load exceeded capacity: exactly queue_max requests were
  // admitted, the rest shed with a structured error.
  EXPECT_EQ(shed, kOffered - 8);
  EXPECT_EQ(futs.size(), 8u);

  engine.resume();
  // The invariant: every admitted request resolves — a value or a
  // structured ServeError — with no hung futures.
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    EXPECT_NO_THROW({
      try {
        const ServeResult res = f.get();
        EXPECT_TRUE(res.code == ServeCode::Ok ||
                    res.code == ServeCode::Degraded);
      } catch (const ServeError&) {
        // Structured failure: also an allowed resolution.
      }
    });
  }
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.requests, 8u);
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(kOffered - 8));
}

// ---- Deadlines -------------------------------------------------------

TEST(ServeRobustness, ExpiredRequestIsShedBeforePacking) {
  ServeFixture fx(256);
  ServeOptions so;
  so.start_paused = true;
  ServeEngine engine(fx.solver, so);

  // Already expired at submit: the worker must shed it without ever
  // spending a batch slot, and the future must fail in bounded time.
  std::future<ServeResult> doomed = engine.submit(
      random_rhs(fx.h.n(), 61), steady_clock::now() - milliseconds(1));
  std::future<ServeResult> fine = engine.submit(random_rhs(fx.h.n(), 62));
  engine.resume();

  ASSERT_EQ(doomed.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(error_code(doomed), ServeCode::DeadlineExceeded);
  EXPECT_EQ(fine.get().code, ServeCode::Ok);
  engine.drain();
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.expired, 1u);
  // The expired request never occupied a batch slot.
  EXPECT_EQ(st.max_batch, 1);
}

TEST(ServeRobustness, DefaultDeadlineAppliesToPlainSubmit) {
  ServeFixture fx(256);
  ServeOptions so;
  so.start_paused = true;
  so.default_deadline = milliseconds(20);
  ServeEngine engine(fx.solver, so);

  std::future<ServeResult> fut = engine.submit(random_rhs(fx.h.n(), 63));
  std::this_thread::sleep_for(milliseconds(60));  // Let it expire queued.
  engine.resume();
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(error_code(fut), ServeCode::DeadlineExceeded);
}

// ---- Poison isolation ------------------------------------------------

TEST(ServeRobustness, SubmitRejectsNonFiniteRhsWhenValidating) {
  ServeFixture fx(256);
  ServeEngine engine(fx.solver);  // validate_rhs defaults to true.
  std::vector<double> rhs = random_rhs(fx.h.n(), 71);
  rhs[3] = std::nan("");
  try {
    engine.submit(std::move(rhs));
    FAIL() << "expected ServeError(InvalidRhs)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeCode::InvalidRhs);
  }
  EXPECT_EQ(engine.stats().requests, 0u);
  EXPECT_EQ(engine.stats().poisoned, 1u);
}

TEST(ServeRobustness, PoisonColumnFailsAloneBatchmatesExact) {
  ServeFixture fx(256);
  ServeOptions so;
  so.batch_max = 8;
  so.start_paused = true;
  so.validate_rhs = false;  // Let the poison reach the batch.
  ServeEngine engine(fx.solver, so);

  constexpr int kReqs = 5;
  constexpr int kPoison = 2;
  std::vector<std::vector<double>> rhss;
  std::vector<std::future<ServeResult>> futs;
  for (int r = 0; r < kReqs; ++r) {
    rhss.push_back(random_rhs(fx.h.n(), static_cast<uint64_t>(200 + r)));
    if (r == kPoison) rhss.back()[7] = std::nan("");
    futs.push_back(engine.submit(std::vector<double>(rhss.back())));
  }
  engine.resume();

  for (int r = 0; r < kReqs; ++r) {
    if (r == kPoison) {
      EXPECT_EQ(error_code(futs[static_cast<size_t>(r)]),
                ServeCode::PoisonRhs);
      continue;
    }
    // Batchmates must match a solo solve to 1e-12: the poison column is
    // arithmetically isolated inside the block solve.
    const ServeResult res = futs[static_cast<size_t>(r)].get();
    EXPECT_EQ(res.code, ServeCode::Ok);
    const std::vector<double> want = fx.solver->solve(
        std::span<const double>(rhss[static_cast<size_t>(r)]));
    double worst = 0.0;
    for (size_t i = 0; i < want.size(); ++i)
      worst = std::max(worst, std::abs(res.x[i] - want[i]));
    EXPECT_LT(worst, 1e-12);
  }
  engine.drain();
  EXPECT_EQ(engine.stats().poisoned, 1u);
  // One batch served all five requests; the poison cost no bisection.
  EXPECT_EQ(engine.stats().batches, 1u);
}

// ---- Degraded mode ---------------------------------------------------

TEST(ServeRobustness, DegradedGmresSolveMatchesOperator) {
  ServeFixture fx(256);
  const std::vector<double> rhs = random_rhs(fx.h.n(), 81);
  const ServeResult res = degraded_gmres_solve(
      fx.h, 1.0, rhs, degraded_gmres_defaults());
  EXPECT_EQ(res.code, ServeCode::Degraded);
  EXPECT_TRUE(res.degraded());
  EXPECT_GE(res.residual, 0.0);
  EXPECT_LE(res.residual, 1e-3);
  EXPECT_LE(fx.h.relative_residual(res.x, rhs, 1.0), 1e-3);
}

TEST(ServeRobustness, QueueSaturationTriggersDegradedBatch) {
  ServeFixture fx(256);
  ServeOptions so;
  so.batch_max = 8;
  so.queue_max = 8;
  so.degrade_watermark = 0.5;
  so.start_paused = true;
  ServeEngine engine(fx.solver, so);

  std::vector<std::future<ServeResult>> futs;
  for (int r = 0; r < 8; ++r)
    futs.push_back(engine.submit(
        random_rhs(fx.h.n(), static_cast<uint64_t>(300 + r))));
  engine.resume();

  // Queue held 8 >= 0.5 * 8 at packing time: the whole batch is served
  // by the GMRES-only path and marked degraded.
  for (auto& f : futs) {
    const ServeResult res = f.get();
    EXPECT_EQ(res.code, ServeCode::Degraded);
    EXPECT_LE(res.residual, 1e-3);
  }
  engine.drain();
  EXPECT_EQ(engine.stats().degraded, 8u);
}

// ---- Drain semantics -------------------------------------------------

TEST(ServeRobustness, DrainOnPausedEngineReturnsWithQueuedWork) {
  ServeFixture fx(256);
  ServeOptions so;
  so.start_paused = true;
  ServeEngine engine(fx.solver, so);
  std::vector<std::future<ServeResult>> futs;
  for (int r = 0; r < 3; ++r)
    futs.push_back(engine.submit(
        random_rhs(fx.h.n(), static_cast<uint64_t>(400 + r))));

  // drain() waits for in-flight work only: on a paused engine with
  // queued requests it must return, not spin until a resume() that may
  // never come.
  EXPECT_TRUE(engine.drain_for(std::chrono::seconds(10)));
  engine.drain();  // Same predicate, unbounded form.

  engine.resume();
  engine.drain();  // Now waits until the queue is empty again.
  for (auto& f : futs) EXPECT_EQ(f.get().code, ServeCode::Ok);
}

// ---- Shutdown / destruction (fault label: TSan targets) --------------

TEST(ServeRobustness, DestructionFailsQueuedRequestsStructurally) {
  ServeFixture fx(256);
  std::vector<std::future<ServeResult>> futs;
  {
    ServeOptions so;
    so.start_paused = true;
    ServeEngine engine(fx.solver, so);
    for (int r = 0; r < 4; ++r)
      futs.push_back(engine.submit(
          random_rhs(fx.h.n(), static_cast<uint64_t>(500 + r))));
    // Engine destroyed with the queue full and the gate closed.
  }
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(1)),
              std::future_status::ready);
    EXPECT_EQ(error_code(f), ServeCode::ShuttingDown);
  }
}

TEST(ServeRobustness, ShutdownRacingSubmittersDropsNoPromise) {
  ServeFixture fx(256);
  ServeOptions so;
  so.batch_max = 4;
  auto engine = std::make_unique<ServeEngine>(fx.solver, so);

  constexpr int kThreads = 4;
  std::atomic<int> unresolved{0};
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int r = 0;; ++r) {
        std::future<ServeResult> fut;
        try {
          fut = engine->submit(random_rhs(
              fx.h.n(), static_cast<uint64_t>(600 + t * 1000 + r)));
        } catch (const ServeError& e) {
          // Structured admission failure — once the engine is stopping,
          // the submitter's work is done.
          if (e.code() == ServeCode::ShuttingDown) return;
          continue;
        }
        // Every future handed out must resolve, value or ServeError.
        if (fut.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          unresolved.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        try {
          (void)fut.get();
        } catch (const ServeError&) {
        }
      }
    });
  }
  std::this_thread::sleep_for(milliseconds(50));
  engine->shutdown();  // Races the active submitters.
  for (auto& th : ts) th.join();
  EXPECT_EQ(unresolved.load(), 0);
  engine.reset();  // Destructor after shutdown() must be a clean no-op.
}

// ---- Factor cache: breaker + byte budget -----------------------------

TEST(FactorCacheRobustness, BreakerTripsAfterRepeatedFailures) {
  ServeFixture fx(256);
  core::SolverOptions o;
  o.lambda = 1.0;

  std::atomic<bool> fail{true};
  FactorCacheOptions co;
  co.capacity = 2;
  co.breaker_threshold = 2;
  co.breaker_cooldown = milliseconds(150);
  co.factory = [&fail](const HMatrix& h, const core::SolverOptions& so)
      -> std::shared_ptr<const FastDirectSolver> {
    if (fail.load()) throw std::runtime_error("injected factor failure");
    return std::make_shared<FastDirectSolver>(h, so);
  };
  FactorCache cache(co);

  // Two consecutive failures trip the breaker...
  EXPECT_THROW((void)cache.get(fx.h, o), std::runtime_error);
  EXPECT_THROW((void)cache.get(fx.h, o), std::runtime_error);
  EXPECT_TRUE(cache.breaker_open(fx.h, o));

  // ...and while open, get() fast-fails with BreakerOpen instead of
  // re-running the factorization.
  try {
    (void)cache.get(fx.h, o);
    FAIL() << "expected ServeError(BreakerOpen)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeCode::BreakerOpen);
  }
  FactorCache::Stats st = cache.stats();
  EXPECT_EQ(st.failures, 2u);
  EXPECT_EQ(st.breaker_trips, 1u);
  EXPECT_EQ(st.breaker_rejects, 1u);
  EXPECT_EQ(st.misses, 2u);  // The fast-fail never counted as a miss.

  // After the cooldown the breaker goes half-open: one probe runs, and
  // a successful factorization clears the breaker entirely.
  fail.store(false);
  std::this_thread::sleep_for(milliseconds(200));
  EXPECT_FALSE(cache.breaker_open(fx.h, o));
  auto solver = cache.get(fx.h, o);
  ASSERT_TRUE(solver);
  EXPECT_FALSE(cache.breaker_open(fx.h, o));
  EXPECT_EQ(cache.stats().breaker_trips, 1u);
}

TEST(FactorCacheRobustness, ByteBudgetEvictsLru) {
  ServeFixture fx(256);
  core::SolverOptions o1, o2;
  o1.lambda = 1.0;
  o2.lambda = 2.0;

  // Learn one factor's footprint first (same HMatrix and options modulo
  // lambda → identical factor structure and byte count).
  FactorCache probe(4);
  auto s1 = probe.get(fx.h, o1);
  const size_t one = probe.bytes();
  ASSERT_GT(one, 0u);
  EXPECT_EQ(one, s1->factor_tree().memory_bytes());
  // For a fully factored tree the flat walk and the root subtree walk
  // agree.
  EXPECT_EQ(s1->factor_tree().memory_bytes(), s1->factor_bytes());

  // A budget that fits one factor but not two must evict the LRU entry
  // even though the entry-count capacity (4) is not exhausted.
  FactorCacheOptions co;
  co.capacity = 4;
  co.max_bytes = one + one / 2;
  FactorCache cache(co);
  (void)cache.get(fx.h, o1);
  (void)cache.get(fx.h, o2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LE(cache.bytes(), co.max_bytes);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The survivor is the most recently used (lambda = 2).
  auto s2 = cache.get(fx.h, o2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(s2->lambda(), 2.0);
}

}  // namespace
}  // namespace fdks::serve
