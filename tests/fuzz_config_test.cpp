// Randomized configuration sweep ("fuzz") over the full pipeline: for
// each seeded draw of (N, d, bandwidth, leaf size, rank cap, tolerance,
// level restriction, summation scheme, algorithm, storage mode), the
// solver must invert its own compressed operator to near machine
// precision whenever the factorization reports stability — the single
// invariant that every configuration shares.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>

#include "core/solver.hpp"
#include "la/blas1.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

struct FuzzDraw {
  index_t n, d, leaf, rank;
  double h, tol, lambda;
  index_t restriction;
  kernel::Scheme scheme;
  FactorizationAlgo algo;
  bool compact, spd, levelwise;
};

FuzzDraw draw(uint64_t seed) {
  std::mt19937_64 rng(seed * 2654435761ull + 17);
  auto pick = [&](auto... opts) {
    const std::array arr{opts...};
    return arr[std::uniform_int_distribution<size_t>(0, arr.size() - 1)(rng)];
  };
  FuzzDraw f;
  f.n = pick(index_t{96}, index_t{180}, index_t{256}, index_t{333},
             index_t{512});
  f.d = pick(index_t{2}, index_t{3}, index_t{5}, index_t{8}, index_t{16});
  f.leaf = pick(index_t{16}, index_t{32}, index_t{48});
  f.rank = pick(index_t{16}, index_t{32}, index_t{64});
  f.h = pick(0.5, 1.0, 2.0, 4.0);
  f.tol = pick(1e-4, 1e-6, 1e-8, 0.0);
  f.lambda = pick(0.1, 1.0, 10.0);
  f.restriction = pick(index_t{0}, index_t{1}, index_t{2});
  f.scheme = pick(kernel::Scheme::StoredGemv, kernel::Scheme::ReevalGemm,
                  kernel::Scheme::Gsks);
  f.algo = pick(FactorizationAlgo::Telescoped, FactorizationAlgo::Subtree);
  f.compact = pick(false, true) && f.algo == FactorizationAlgo::Telescoped;
  f.spd = pick(false, true);
  f.levelwise = pick(false, true);
  return f;
}

Matrix fuzz_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Mixture of a cluster, a manifold strand, and background noise:
  // deliberately messy geometry.
  Matrix p(d, n);
  std::normal_distribution<double> g(0.0, 1.0);
  for (index_t j = 0; j < n; ++j) {
    const int mode = static_cast<int>(j % 3);
    for (index_t i = 0; i < d; ++i) {
      if (mode == 0)
        p(i, j) = 0.2 * g(rng) + 1.5;
      else if (mode == 1)
        p(i, j) = std::sin(0.1 * double(j) + double(i)) + 0.05 * g(rng);
      else
        p(i, j) = g(rng);
    }
  }
  return p;
}

class FuzzConfig : public ::testing::TestWithParam<int> {};

TEST_P(FuzzConfig, SolverInvertsItsOwnOperator) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const FuzzDraw f = draw(seed);
  SCOPED_TRACE(::testing::Message()
               << "seed=" << seed << " n=" << f.n << " d=" << f.d
               << " leaf=" << f.leaf << " rank=" << f.rank << " h=" << f.h
               << " tol=" << f.tol << " lambda=" << f.lambda << " L="
               << f.restriction << " scheme=" << static_cast<int>(f.scheme)
               << " algo=" << static_cast<int>(f.algo)
               << " compact=" << f.compact << " spd=" << f.spd
               << " levelwise=" << f.levelwise);

  AskitConfig acfg;
  acfg.leaf_size = f.leaf;
  acfg.max_rank = f.rank;
  acfg.tol = f.tol;
  acfg.num_neighbors = 0;
  acfg.level_restriction = f.restriction;
  acfg.seed = seed + 1;
  askit::HMatrix h(fuzz_points(f.d, f.n, seed + 2), Kernel::gaussian(f.h),
                   acfg);

  SolverOptions so;
  so.lambda = f.lambda;
  so.scheme = f.scheme;
  so.algo = f.algo;
  so.compact_w = f.compact;
  so.spd_leaves = f.spd;
  so.levelwise = f.levelwise;
  FastDirectSolver solver(h, so);

  std::mt19937_64 rng(seed + 3);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(static_cast<size_t>(f.n));
  for (auto& v : u) v = g(rng);
  auto x = solver.solve(u);

  if (solver.stability().stable()) {
    EXPECT_LT(h.relative_residual(x, u, f.lambda), 1e-8);
  } else {
    // Unstable configurations must still return finite values.
    for (double v : x) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzConfig, ::testing::Range(0, 40));

}  // namespace
}  // namespace fdks::core
