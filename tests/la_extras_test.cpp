// Additional coverage for the dense substrate and tree internals that
// the factorization exercises only indirectly: Q application, serialized
// tree reconstruction, uneven communicator splits, and utility paths.
#include <gtest/gtest.h>

#include <random>

#include "la/gemm.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "mpisim/runtime.hpp"
#include "tree/ball_tree.hpp"

namespace fdks {
namespace {

using la::Matrix;
using la::index_t;

TEST(QrApply, QtThenQIsIdentity) {
  std::mt19937_64 rng(1);
  Matrix a = Matrix::random_gaussian(12, 8, rng);
  la::QrFactor f = la::qr_factor(a);
  Matrix b = Matrix::random_gaussian(12, 3, rng);
  Matrix b0 = b;
  la::qr_apply_qt(f, b);
  la::qr_apply_q(f, b);
  EXPECT_LT(la::max_abs_diff(b, b0), 1e-12);
}

TEST(QrApply, QtMatchesExplicitQ) {
  std::mt19937_64 rng(2);
  Matrix a = Matrix::random_gaussian(10, 6, rng);
  la::QrFactor f = la::qr_factor(a);
  Matrix q = la::qr_form_q(f);
  Matrix b = Matrix::random_gaussian(10, 2, rng);
  Matrix viaq = la::matmul(la::Trans::Yes, la::Trans::No, q, b);
  la::qr_apply_qt(f, b);
  // Only the leading rank rows are meaningful for the thin comparison.
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < f.rank; ++i)
      EXPECT_NEAR(b(i, j), viaq(i, j), 1e-12);
}

TEST(QrApply, RowMismatchThrows) {
  std::mt19937_64 rng(3);
  Matrix a = Matrix::random_gaussian(8, 4, rng);
  la::QrFactor f = la::qr_factor(a);
  Matrix bad(7, 1);
  EXPECT_THROW(la::qr_apply_qt(f, bad), std::invalid_argument);
  EXPECT_THROW(la::qr_apply_q(f, bad), std::invalid_argument);
}

TEST(MatrixUtil, ToStringContainsShape) {
  Matrix m(2, 3);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("2x3"), std::string::npos);
}

TEST(MatrixUtil, ResizeZeroFills) {
  Matrix m(2, 2, 5.0);
  m.resize(3, 3);
  EXPECT_EQ(m.rows(), 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
}

TEST(TreeRestore, FromPartsMatchesOriginal) {
  std::mt19937_64 rng(4);
  Matrix p = Matrix::random_gaussian(4, 200, rng);
  tree::BallTree t(p, {16, 9});
  tree::BallTree back({16, 9}, t.nodes(), t.perm());
  EXPECT_EQ(back.depth(), t.depth());
  EXPECT_EQ(back.inverse_perm(), t.inverse_perm());
  EXPECT_EQ(back.levels().size(), t.levels().size());
  for (size_t l = 0; l < t.levels().size(); ++l)
    EXPECT_EQ(back.levels()[l], t.levels()[l]);
  for (index_t pos = 0; pos < 200; ++pos)
    EXPECT_EQ(back.leaf_of(pos), t.leaf_of(pos));
}

TEST(TreeRestore, RejectsCorruptParts) {
  std::mt19937_64 rng(5);
  Matrix p = Matrix::random_gaussian(2, 50, rng);
  tree::BallTree t(p, {8, 10});
  EXPECT_THROW(tree::BallTree({8, 10}, {}, t.perm()), std::invalid_argument);
  auto nodes = t.nodes();
  nodes.front().end = 49;  // Root range no longer covers all points.
  EXPECT_THROW(tree::BallTree({8, 10}, nodes, t.perm()),
               std::invalid_argument);
}

TEST(MpisimSplit, UnevenColorsFormCorrectGroups) {
  mpisim::run(5, [](mpisim::Comm& c) {
    // Colors: {0,0,1,1,1} -> groups of size 2 and 3.
    mpisim::Comm sub = c.split(c.rank() < 2 ? 0 : 1);
    EXPECT_EQ(sub.size(), c.rank() < 2 ? 2 : 3);
    std::vector<double> v{1.0};
    sub.allreduce_sum(v);
    EXPECT_EQ(v[0], static_cast<double>(sub.size()));
  });
}

TEST(MpisimSplit, SingletonGroups) {
  mpisim::run(3, [](mpisim::Comm& c) {
    mpisim::Comm solo = c.split(c.rank());  // Every rank its own color.
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    std::vector<double> v{42.0};
    solo.allreduce_sum(v);  // Degenerate collectives must still work.
    EXPECT_EQ(v[0], 42.0);
  });
}

}  // namespace
}  // namespace fdks
