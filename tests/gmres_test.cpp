// Tests for the restarted GMRES solver.
#include <gtest/gtest.h>

#include <random>

#include "iterative/gmres.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"
#include "la/lu.hpp"

namespace fdks::iter {
namespace {

using la::Matrix;
using la::index_t;

LinOp dense_op(const Matrix& a) {
  return [&a](std::span<const double> x, std::span<double> y) {
    la::gemv(la::Trans::No, 1.0, a, x, 0.0, y);
  };
}

TEST(Gmres, IdentitySolvesInOneIteration) {
  Matrix a = Matrix::identity(10);
  std::vector<double> b(10, 3.0);
  GmresResult r = gmres(10, dense_op(a), b);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 2);
  for (double v : r.x) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Gmres, ZeroRhsReturnsZero) {
  Matrix a = Matrix::identity(5);
  std::vector<double> b(5, 0.0);
  GmresResult r = gmres(5, dense_op(a), b);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (double v : r.x) EXPECT_EQ(v, 0.0);
}

TEST(Gmres, SolvesDiagonallyDominantSystem) {
  const index_t n = 40;
  std::mt19937_64 rng(3);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += 2.0 * n;
  Matrix xexact = Matrix::random_gaussian(n, 1, rng);
  Matrix bmat = la::matmul(a, xexact);
  std::vector<double> b(bmat.data(), bmat.data() + n);
  GmresOptions opts;
  opts.rtol = 1e-12;
  GmresResult r = gmres(n, dense_op(a), b, opts);
  EXPECT_TRUE(r.converged);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.x[static_cast<size_t>(i)], xexact(i, 0), 1e-9);
}

TEST(Gmres, ResidualHistoryIsMonotoneNonincreasing) {
  const index_t n = 30;
  std::mt19937_64 rng(4);
  Matrix g = Matrix::random_gaussian(n, n, rng);
  Matrix a = la::matmul(la::Trans::Yes, la::Trans::No, g, g);
  for (index_t i = 0; i < n; ++i) a(i, i) += 1.0;
  std::vector<double> b(static_cast<size_t>(n), 1.0);
  GmresResult r = gmres(n, dense_op(a), b);
  ASSERT_GT(r.residual_history.size(), 1u);
  for (size_t k = 1; k < r.residual_history.size(); ++k)
    EXPECT_LE(r.residual_history[k], r.residual_history[k - 1] + 1e-15);
  EXPECT_EQ(r.residual_history.size(), r.time_history.size());
}

TEST(Gmres, RestartStillConverges) {
  const index_t n = 50;
  std::mt19937_64 rng(5);
  Matrix g = Matrix::random_gaussian(n, n, rng);
  Matrix a = la::matmul(la::Trans::Yes, la::Trans::No, g, g);
  for (index_t i = 0; i < n; ++i) a(i, i) += 5.0;
  std::vector<double> b(static_cast<size_t>(n), 1.0);
  GmresOptions opts;
  opts.restart = 7;  // Force many restart cycles.
  opts.max_iters = 400;
  opts.rtol = 1e-10;
  GmresResult r = gmres(n, dense_op(a), b, opts);
  EXPECT_TRUE(r.converged);
  // Verify the returned x against a direct solve.
  la::LuFactor f = la::lu_factor(a);
  std::vector<double> xd = b;
  la::lu_solve(f, xd);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(r.x[static_cast<size_t>(i)], xd[static_cast<size_t>(i)],
                1e-6);
}

TEST(Gmres, StallsOnIllConditionedWithFewIterations) {
  // A tiny iteration budget on an ill-conditioned system must report
  // non-convergence (the behaviour Figure 5 shows at kappa = 1e5).
  const index_t n = 60;
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i)
    a(i, i) = std::pow(10.0, -5.0 * double(i) / double(n - 1));
  std::vector<double> b(static_cast<size_t>(n), 1.0);
  GmresOptions opts;
  opts.max_iters = 5;
  opts.restart = 5;
  opts.rtol = 1e-12;
  GmresResult r = gmres(n, dense_op(a), b, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.relative_residual, 1e-8);
}

TEST(Gmres, CgsRefinementImprovesOrthogonality) {
  // On a difficult system, the refined variant must do at least as well
  // for the same budget.
  const index_t n = 80;
  std::mt19937_64 rng(6);
  Matrix g = Matrix::random_gaussian(n, n, rng);
  Matrix a = la::matmul(la::Trans::Yes, la::Trans::No, g, g);
  for (index_t i = 0; i < n; ++i) a(i, i) += 0.01;
  std::vector<double> b(static_cast<size_t>(n), 1.0);
  GmresOptions with, without;
  with.cgs_refine = true;
  without.cgs_refine = false;
  with.max_iters = without.max_iters = 60;
  with.restart = without.restart = 60;
  with.rtol = without.rtol = 1e-14;
  GmresResult r1 = gmres(n, dense_op(a), b, with);
  GmresResult r2 = gmres(n, dense_op(a), b, without);
  EXPECT_LE(r1.relative_residual, r2.relative_residual * 10.0);
}

TEST(Gmres, AtolStopsEarly) {
  Matrix a = Matrix::identity(8);
  std::vector<double> b(8, 1e-14);
  GmresOptions opts;
  opts.atol = 1e-10;
  GmresResult r = gmres(8, dense_op(a), b, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

}  // namespace
}  // namespace fdks::iter
