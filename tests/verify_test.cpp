// Tests for answer certification and self-healing factor integrity
// (PR 8): the a posteriori residual check, the refinement/escalation
// ladder (including the batched refine-only-failing-columns path), the
// FactorCache's lazy checksum verification with refactorize-on-mismatch
// healing, and the serving engine's certified Ok path. Runs under the
// `fault` ctest label so the TSan job covers the engine/cache threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "core/verify.hpp"
#include "mpisim/runtime.hpp"
#include "obs/obs.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

/// Deliberately coarse skeletons: the factor still inverts the
/// target-interpolation operator exactly, but it is O(tol) away from
/// the source-skeleton (Treecode) operator — exactly the gap the
/// refinement ladder is built to close.
AskitConfig coarse_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 32;
  cfg.tol = 1e-4;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

double counter(const obs::Snapshot& s, const std::string& k) {
  auto it = s.counters.find(k);
  return it == s.counters.end() ? 0.0 : it->second;
}

/// Counters are off by default process-wide; tests that assert
/// verify.*/refine.* deltas turn them on for their own scope.
struct ObsOn {
  ObsOn() { obs::set_enabled(true); }
  ~ObsOn() { obs::set_enabled(false); }
};

// ---- Sampling policy -------------------------------------------------

TEST(VerifyPolicyTest, SamplingPicksEveryKth) {
  VerifyPolicy p;
  p.mode = VerifyMode::Sample;
  p.sample_every = 4;
  EXPECT_TRUE(should_verify(p, 0));  // First solve always in-sample.
  EXPECT_FALSE(should_verify(p, 1));
  EXPECT_FALSE(should_verify(p, 3));
  EXPECT_TRUE(should_verify(p, 4));
  EXPECT_TRUE(should_verify(p, 8));
  p.mode = VerifyMode::Off;
  EXPECT_FALSE(should_verify(p, 0));
  p.mode = VerifyMode::Always;
  EXPECT_TRUE(should_verify(p, 3));
}

// ---- Certification of a healthy factor -------------------------------

TEST(CertifyTest, HealthyFactorCertifiesWithoutRefinement) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 11);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), tight_config());
  SolverOptions so;
  so.lambda = 1.0;
  so.verify.mode = VerifyMode::Always;
  so.verify.target_residual = 1e-10;
  FastDirectSolver s(h, so);

  const std::vector<double> u = random_vec(n, 3);
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  const VerifyOutcome vo = s.solve_verified(u, x);

  EXPECT_TRUE(vo.measured);
  EXPECT_TRUE(vo.certified);
  EXPECT_GE(vo.residual, 0.0);
  EXPECT_LE(vo.residual, 1e-10);
  // The factor inverts the factorized-form operator to roundoff, so no
  // ladder rungs should have been needed.
  EXPECT_EQ(vo.refine_steps, 0);
  EXPECT_EQ(vo.escalations, 0);
}

// ---- Refinement ladder on a deliberately coarse factor ---------------

TEST(CertifyTest, CoarseFactorRefinesToTarget) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 11);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), coarse_config());
  SolverOptions so;
  so.lambda = 1.0;
  so.verify.mode = VerifyMode::Always;
  so.verify.op = VerifyPolicy::Operator::Treecode;
  so.verify.target_residual = 1e-8;
  so.verify.max_refine_steps = 10;
  so.verify.min_step_improvement = 0.9;
  FastDirectSolver s(h, so);

  // The raw factor solve must miss the target against the Treecode
  // operator (otherwise this test exercises nothing).
  const std::vector<double> u = random_vec(n, 5);
  std::vector<double> x0 = s.solve(u);
  std::vector<double> r(static_cast<size_t>(n), 0.0);
  h.apply_source(x0, r, so.lambda);
  double rnorm = 0.0, bnorm = 0.0;
  for (size_t i = 0; i < r.size(); ++i) {
    const double d = u[i] - r[i];
    rnorm += d * d;
    bnorm += u[i] * u[i];
  }
  ASSERT_GT(std::sqrt(rnorm / bnorm), 1e-8);

  ObsOn obs_on;
  const obs::Snapshot before = obs::snapshot();
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  const VerifyOutcome vo = s.solve_verified(u, x);
  const obs::Snapshot after = obs::snapshot();

  EXPECT_TRUE(vo.measured);
  EXPECT_TRUE(vo.certified);
  EXPECT_LE(vo.residual, 1e-8);
  EXPECT_GE(vo.refine_steps, 1);
  EXPECT_EQ(vo.escalations, 0);

  EXPECT_GE(counter(after, "verify.checks") - counter(before, "verify.checks"),
            1.0);
  EXPECT_GE(counter(after, "verify.fail") - counter(before, "verify.fail"),
            1.0);
  EXPECT_GE(counter(after, "refine.steps") - counter(before, "refine.steps"),
            static_cast<double>(vo.refine_steps));
}

TEST(CertifyTest, GmresRungCertifiesWhenRefinementDisabled) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 11);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), coarse_config());
  SolverOptions so;
  so.lambda = 1.0;
  so.verify.mode = VerifyMode::Always;
  so.verify.op = VerifyPolicy::Operator::Treecode;
  so.verify.target_residual = 1e-8;
  so.verify.max_refine_steps = 0;  // Straight to rung 2.
  so.verify.escalate_max_iters = 300;
  FastDirectSolver s(h, so);

  const std::vector<double> u = random_vec(n, 9);
  ObsOn obs_on;
  const obs::Snapshot before = obs::snapshot();
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  const VerifyOutcome vo = s.solve_verified(u, x);
  const obs::Snapshot after = obs::snapshot();

  EXPECT_TRUE(vo.certified);
  EXPECT_LE(vo.residual, 1e-8);
  EXPECT_EQ(vo.refine_steps, 0);
  EXPECT_EQ(vo.escalations, 1);
  EXPECT_GE(counter(after, "refine.escalations") -
                counter(before, "refine.escalations"),
            1.0);
}

// ---- Batched ladder: per-column blame, batched repair -----------------

TEST(CertifyTest, BatchRefinesOnlyTheInjectedBadColumn) {
  const index_t n = 384;
  const index_t cols = 4;
  Matrix pts = clustered_points(3, n, 11);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), tight_config());
  SolverOptions so;
  so.lambda = 1.0;
  FastDirectSolver s(h, so);

  std::mt19937_64 rng(21);
  const Matrix b = Matrix::random_gaussian(n, cols, rng);
  Matrix x = s.solve(b);

  // Corrupt exactly column 2 of the answer: its residual blows up while
  // its batchmates stay at roundoff.
  for (index_t i = 0; i < n; ++i) x(i, 2) *= 1.5;

  VerifyPolicy p;
  p.mode = VerifyMode::Always;
  p.target_residual = 1e-8;
  const std::vector<VerifyOutcome> outs = certify_and_refine_block(s, b, x, p);

  ASSERT_EQ(outs.size(), static_cast<size_t>(cols));
  for (index_t j = 0; j < cols; ++j) {
    EXPECT_TRUE(outs[static_cast<size_t>(j)].measured);
    EXPECT_TRUE(outs[static_cast<size_t>(j)].certified) << "column " << j;
    EXPECT_LE(outs[static_cast<size_t>(j)].residual, 1e-8);
    if (j != 2) {
      EXPECT_EQ(outs[static_cast<size_t>(j)].refine_steps, 0)
          << "healthy column " << j << " must not be re-solved";
    }
  }
  EXPECT_GE(outs[2].refine_steps, 1);
}

// ---- Factor integrity: seal, corrupt, detect --------------------------

TEST(IntegrityTest, CorruptionFlipsVerifyIntegrity) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 13);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), tight_config());
  SolverOptions so;
  so.lambda = 1.0;
  FastDirectSolver s(h, so);

  EXPECT_TRUE(s.verify_integrity());
  ASSERT_TRUE(s.corrupt_factor_bit(12345));
  ObsOn obs_on;
  const obs::Snapshot before = obs::snapshot();
  EXPECT_FALSE(s.verify_integrity());
  const obs::Snapshot after = obs::snapshot();
  EXPECT_GE(counter(after, "verify.integrity_fail") -
                counter(before, "verify.integrity_fail"),
            1.0);

  // Refactorizing reseals: integrity holds again.
  s.refactorize(so.lambda);
  EXPECT_TRUE(s.verify_integrity());
}

// ---- Distributed certification (collective ladder) --------------------

TEST(DistVerifyTest, DistributedSolveCarriesCertifiedResidual) {
  const index_t n = 256;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), tight_config());
  SolverOptions so;
  so.lambda = 0.7;
  so.verify.mode = VerifyMode::Always;
  so.verify.target_residual = 1e-9;

  const std::vector<double> u = random_vec(n, 2);
  mpisim::run(2, [&](mpisim::Comm& comm) {
    DistributedSolver solver(h, so, comm);
    const std::vector<double> x = solver.solve(u);
    const SolveStatus& st = solver.last_status();
    EXPECT_TRUE(st.ok()) << st.message();
    EXPECT_GE(st.residual, 0.0);
    EXPECT_LE(st.residual, 1e-9);
  });
}

}  // namespace
}  // namespace fdks::core

namespace fdks::serve {
namespace {

using core::FastDirectSolver;
using core::SolverOptions;
using core::VerifyMode;
using la::Matrix;
using la::index_t;

// ---- Cache self-healing ----------------------------------------------

TEST(CacheIntegrityTest, BitFlipDetectedOnHitAndHealedByRefactorization) {
  const index_t n = 256;
  Matrix pts = fdks::core::clustered_points(3, n, 13);
  askit::HMatrix h(pts, kernel::Kernel::gaussian(1.0),
                   fdks::core::tight_config());
  SolverOptions so;
  so.lambda = 1.0;

  int factorizations = 0;
  std::shared_ptr<FastDirectSolver> last;  // Mutable handle for the test.
  FactorCacheOptions co;
  co.capacity = 2;
  co.integrity_check_every = 1;  // Verify on every hit.
  co.factory = [&](const core::HMatrix& hm, const SolverOptions& o) {
    ++factorizations;
    auto sp = std::make_shared<FastDirectSolver>(hm, o);
    last = sp;
    return sp;
  };
  FactorCache cache(co);

  const auto s1 = cache.get(h, so);
  ASSERT_EQ(factorizations, 1);
  const std::vector<double> u = fdks::core::random_vec(n, 4);
  const std::vector<double> x_clean = s1->solve(u);

  // Flip one mantissa bit somewhere in the resident factor. The next
  // hit must detect the mismatch, drop the entry, and refactorize.
  ASSERT_TRUE(last->corrupt_factor_bit(987654321));
  const auto s2 = cache.get(h, so);
  EXPECT_EQ(factorizations, 2);
  EXPECT_NE(s1.get(), s2.get());
  EXPECT_EQ(cache.stats().integrity_failures, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);

  // The healed factor answers like the clean one did.
  const std::vector<double> x_healed = s2->solve(u);
  double worst = 0.0;
  for (size_t i = 0; i < x_clean.size(); ++i)
    worst = std::max(worst, std::abs(x_clean[i] - x_healed[i]));
  EXPECT_LE(worst, 1e-12);

  // A subsequent hit on the fresh entry passes its integrity check and
  // returns the same solver without another factorization.
  const auto s3 = cache.get(h, so);
  EXPECT_EQ(s2.get(), s3.get());
  EXPECT_EQ(factorizations, 2);
  EXPECT_EQ(cache.stats().integrity_failures, 1u);
}

// ---- Serving: every certified answer carries its residual -------------

TEST(ServeVerifyTest, AlwaysPolicyMeasuresEveryServedAnswer) {
  const index_t n = 256;
  Matrix pts = fdks::core::clustered_points(3, n, 13);
  askit::HMatrix h(pts, kernel::Kernel::gaussian(1.0),
                   fdks::core::tight_config());
  SolverOptions so;
  so.lambda = 1.0;
  auto solver = std::make_shared<const FastDirectSolver>(h, so);

  ServeOptions sopts;
  sopts.batch_max = 8;
  sopts.start_paused = true;
  sopts.verify.mode = VerifyMode::Always;
  sopts.verify.target_residual = 1e-8;
  ServeEngine engine(solver, sopts);

  const size_t kRequests = 5;
  std::vector<std::future<ServeResult>> futs;
  for (size_t r = 0; r < kRequests; ++r)
    futs.push_back(
        engine.submit(fdks::core::random_vec(n, 100 + r)));
  engine.resume();

  for (auto& f : futs) {
    const ServeResult res = f.get();
    EXPECT_EQ(res.code, ServeCode::Ok);
    EXPECT_GE(res.residual, 0.0) << "certified answer missing residual";
    EXPECT_LE(res.residual, 1e-8);
  }
  engine.drain();
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.verified, kRequests);
  EXPECT_EQ(st.failed, 0u);
  engine.shutdown();
}

// ---- Serving: an uncertifiable answer fails structurally --------------

TEST(ServeVerifyTest, UncertifiableAnswerFailsWithSolveFailed) {
  const index_t n = 256;
  Matrix pts = fdks::core::clustered_points(3, n, 13);
  askit::HMatrix h(pts, kernel::Kernel::gaussian(1.0),
                   fdks::core::tight_config());
  SolverOptions so;
  so.lambda = 1.0;
  auto solver = std::make_shared<FastDirectSolver>(h, so);
  // Corrupt the factor widely (one flipped mantissa bit can land on a
  // negligible entry) and forbid every ladder rung: certification must
  // surface SolveFailed instead of returning the wrong answer.
  for (std::uint64_t seed = 0; seed < 32; ++seed)
    ASSERT_TRUE(solver->corrupt_factor_bit(1000 + seed));

  ServeOptions sopts;
  sopts.batch_max = 4;
  sopts.start_paused = true;
  sopts.verify.mode = VerifyMode::Always;
  sopts.verify.target_residual = 1e-12;
  sopts.verify.max_refine_steps = 0;
  sopts.verify.escalate = false;
  ServeEngine engine(solver, sopts);

  auto fut = engine.submit(fdks::core::random_vec(n, 77));
  engine.resume();
  try {
    (void)fut.get();
    FAIL() << "expected ServeError(SolveFailed)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeCode::SolveFailed);
    EXPECT_NE(std::string(e.what()).find("residual"), std::string::npos);
  }
  engine.drain();
  EXPECT_EQ(engine.stats().failed, 1u);
  engine.shutdown();
}

}  // namespace
}  // namespace fdks::serve
