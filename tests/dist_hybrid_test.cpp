// Tests for the distributed hybrid solver (Algorithms II.6-II.8 over the
// message-passing runtime): must match the sequential HybridSolver.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <random>
#include <set>

#include "core/dist_hybrid.hpp"
#include "la/blas1.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig restricted(index_t level) {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 0;
  cfg.seed = 9;
  cfg.level_restriction = level;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

HybridOptions hopts(double lambda) {
  HybridOptions o;
  o.direct.lambda = lambda;
  o.gmres.rtol = 1e-12;
  o.gmres.max_iters = 300;
  return o;
}

class DistHybridRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistHybridRanks, MatchesSequentialHybrid) {
  const int p = GetParam();
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(3));
  auto u = random_vec(n, 2);

  HybridSolver seq(h, hopts(0.8));
  auto x_seq = seq.solve(u);

  std::vector<double> x_dist;
  std::mutex mu;
  mpisim::run(p, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(0.8), comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      x_dist = std::move(x);
    }
  });
  ASSERT_EQ(x_dist.size(), x_seq.size());
  EXPECT_LT(la::nrm2(la::vsub(x_dist, x_seq)) / la::nrm2(x_seq), 1e-9)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistHybridRanks, ::testing::Values(1, 2, 4));

// Block (multi-RHS) distributed hybrid solve against the sequential
// hybrid block solve: the reduced-system assembly batches into one
// allreduce of an [S x B] panel, but each column's GMRES is unchanged.
TEST(DistHybrid, BlockSolveMatchesSequentialBlock) {
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 21);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(3));
  HybridSolver seq(h, hopts(0.8));
  std::mt19937_64 rng(22);
  const Matrix u = Matrix::random_gaussian(n, 4, rng);
  const Matrix x_seq = seq.solve(u);

  double worst = 1.0;
  mpisim::run(2, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(0.8), comm);
    Matrix x = ds.solve(u);
    if (comm.rank() == 0) worst = la::max_abs_diff(x, x_seq);
  });
  EXPECT_LT(worst, 1e-9);
}

TEST(DistHybrid, ResidualAgainstCompressedOperator) {
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 3);
  askit::HMatrix h(pts, Kernel::gaussian(0.9), restricted(3));
  auto u = random_vec(n, 4);
  double residual = 1.0;
  int iters = 0;
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(0.5), comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      residual = h.relative_residual(x, u, 0.5);
      iters = ds.last_gmres().iterations;
    }
  });
  EXPECT_LT(residual, 1e-9);
  EXPECT_GT(iters, 0);
}

TEST(DistHybrid, RejectsFrontierAboveRankLevel) {
  // L = 1 frontier with p = 4 ranks: frontier nodes span ranks. All
  // four ranks throw std::invalid_argument, so run() aggregates them
  // into a MultiRankError naming every rank.
  const index_t n = 256;
  Matrix pts = clustered_points(2, n, 5);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(1));
  try {
    mpisim::run(4, [&](mpisim::Comm& comm) {
      DistributedHybridSolver ds(h, hopts(1.0), comm);
    });
    FAIL() << "expected MultiRankError";
  } catch (const mpisim::MultiRankError& e) {
    EXPECT_EQ(e.errors().size(), 4u);
  }
}

TEST(DistHybrid, AllRanksShareIdenticalReducedTrace) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 6);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(2));
  auto u = random_vec(n, 7);
  std::vector<int> iters(4, -1);
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(1.0), comm);
    (void)ds.solve(u);
    iters[static_cast<size_t>(comm.rank())] = ds.last_gmres().iterations;
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(iters[0], iters[static_cast<size_t>(r)]);
}

// A traced 4-rank run must produce one timeline per rank, a matching
// send for every received flow, and a critical path bounded by the wall
// clock from below by the busiest rank — the invariants fdks_tool
// --trace prints and ISSUE 4's acceptance criteria assert.
class DistHybridTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
    obs::trace::set_enabled(true);
    obs::trace::reset();
  }
  void TearDown() override {
    obs::trace::set_enabled(false);
    obs::trace::reset();
    obs::reset();
    obs::set_enabled(false);
  }
};

TEST_F(DistHybridTrace, FourRankRunSatisfiesTraceInvariants) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 6);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(2));
  auto u = random_vec(n, 7);
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(1.0), comm);
    (void)ds.solve(u);
  });

  const obs::trace::TraceData d = obs::trace::collect();
  std::set<int> ranks;
  std::set<std::uint64_t> sent_flows;
  std::size_t recvs = 0, unmatched = 0;
  for (const auto& t : d.threads) {
    if (t.rank >= 0) ranks.insert(t.rank);
    for (const auto& e : t.events)
      if (e.type == obs::trace::Event::kFlowSend) sent_flows.insert(e.id);
  }
  for (const auto& t : d.threads)
    for (const auto& e : t.events)
      if (e.type == obs::trace::Event::kFlowRecv) {
        ++recvs;
        if (sent_flows.count(e.id) == 0) ++unmatched;
      }
  EXPECT_EQ(ranks, (std::set<int>{0, 1, 2, 3}));
  EXPECT_GT(recvs, 0u);
  EXPECT_EQ(unmatched, 0u);  // Every flow arrow has both endpoints.

  const obs::trace::CriticalPath cp = obs::trace::critical_path(d);
  EXPECT_GT(cp.total_seconds, 0.0);
  EXPECT_LE(cp.total_seconds, cp.wall_seconds * (1.0 + 1e-9));
  EXPECT_GE(cp.total_seconds, cp.max_busy_seconds() - 1e-9);
  EXPECT_EQ(cp.rank_busy_seconds.size(), 4u);
  EXPECT_FALSE(cp.segments.empty());

  // The per-rank wait-time histogram fed by the same run.
  const obs::Snapshot s = obs::snapshot();
  ASSERT_EQ(s.histograms.count("mpisim.wait_seconds"), 1u);
  EXPECT_GT(s.histograms.at("mpisim.wait_seconds").count, 0u);
  EXPECT_GT(s.histograms.count("gmres.iter_seconds"), 0u);

  // Export names every rank row.
  const std::string j = obs::trace::chrome_trace_json(d);
  for (int r = 0; r < 4; ++r)
    EXPECT_NE(j.find("\"name\":\"rank " + std::to_string(r) + "\""),
              std::string::npos);
}

}  // namespace
}  // namespace fdks::core
