// Tests for the distributed hybrid solver (Algorithms II.6-II.8 over the
// message-passing runtime): must match the sequential HybridSolver.
#include <gtest/gtest.h>

#include <mutex>
#include <random>

#include "core/dist_hybrid.hpp"
#include "la/blas1.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig restricted(index_t level) {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 0;
  cfg.seed = 9;
  cfg.level_restriction = level;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

HybridOptions hopts(double lambda) {
  HybridOptions o;
  o.direct.lambda = lambda;
  o.gmres.rtol = 1e-12;
  o.gmres.max_iters = 300;
  return o;
}

class DistHybridRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistHybridRanks, MatchesSequentialHybrid) {
  const int p = GetParam();
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 1);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(3));
  auto u = random_vec(n, 2);

  HybridSolver seq(h, hopts(0.8));
  auto x_seq = seq.solve(u);

  std::vector<double> x_dist;
  std::mutex mu;
  mpisim::run(p, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(0.8), comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      x_dist = std::move(x);
    }
  });
  ASSERT_EQ(x_dist.size(), x_seq.size());
  EXPECT_LT(la::nrm2(la::vsub(x_dist, x_seq)) / la::nrm2(x_seq), 1e-9)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistHybridRanks, ::testing::Values(1, 2, 4));

TEST(DistHybrid, ResidualAgainstCompressedOperator) {
  const index_t n = 512;
  Matrix pts = clustered_points(3, n, 3);
  askit::HMatrix h(pts, Kernel::gaussian(0.9), restricted(3));
  auto u = random_vec(n, 4);
  double residual = 1.0;
  int iters = 0;
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(0.5), comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      residual = h.relative_residual(x, u, 0.5);
      iters = ds.last_gmres().iterations;
    }
  });
  EXPECT_LT(residual, 1e-9);
  EXPECT_GT(iters, 0);
}

TEST(DistHybrid, RejectsFrontierAboveRankLevel) {
  // L = 1 frontier with p = 4 ranks: frontier nodes span ranks. All
  // four ranks throw std::invalid_argument, so run() aggregates them
  // into a MultiRankError naming every rank.
  const index_t n = 256;
  Matrix pts = clustered_points(2, n, 5);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(1));
  try {
    mpisim::run(4, [&](mpisim::Comm& comm) {
      DistributedHybridSolver ds(h, hopts(1.0), comm);
    });
    FAIL() << "expected MultiRankError";
  } catch (const mpisim::MultiRankError& e) {
    EXPECT_EQ(e.errors().size(), 4u);
  }
}

TEST(DistHybrid, AllRanksShareIdenticalReducedTrace) {
  const index_t n = 384;
  Matrix pts = clustered_points(3, n, 6);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), restricted(2));
  auto u = random_vec(n, 7);
  std::vector<int> iters(4, -1);
  mpisim::run(4, [&](mpisim::Comm& comm) {
    DistributedHybridSolver ds(h, hopts(1.0), comm);
    (void)ds.solve(u);
    iters[static_cast<size_t>(comm.rank())] = ds.last_gmres().iterations;
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(iters[0], iters[static_cast<size_t>(r)]);
}

}  // namespace
}  // namespace fdks::core
