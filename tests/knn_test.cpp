// Tests for the exact kNN substrate against a brute-force oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "knn/knn.hpp"

namespace fdks::knn {
namespace {

Matrix random_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Matrix::random_gaussian(d, n, rng);
}

double sq_dist(const Matrix& x, index_t a, index_t b) {
  double s = 0.0;
  for (index_t k = 0; k < x.rows(); ++k) {
    const double t = x(k, a) - x(k, b);
    s += t * t;
  }
  return s;
}

TEST(Knn, OneDimensionalLineNeighbors) {
  // Points at 0, 1, 2, ..., 9 on a line: neighbours of i are i-1, i+1.
  Matrix p(1, 10);
  for (index_t j = 0; j < 10; ++j) p(0, j) = static_cast<double>(j);
  KnnResult r = exact_knn(p, 2);
  EXPECT_EQ(r.id(0, 0), 1);
  EXPECT_EQ(r.id(0, 1), 2);
  EXPECT_EQ(r.id(5, 0) + r.id(5, 1), 4 + 6);
  EXPECT_DOUBLE_EQ(r.d2(5, 0), 1.0);
}

TEST(Knn, ExcludesSelf) {
  Matrix p = random_points(3, 30, 5);
  KnnResult r = exact_knn(p, 4);
  for (index_t i = 0; i < 30; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_NE(r.id(i, j), i);
}

TEST(Knn, DistancesAreSortedAscending) {
  Matrix p = random_points(4, 50, 6);
  KnnResult r = exact_knn(p, 8);
  for (index_t i = 0; i < 50; ++i)
    for (index_t j = 1; j < 8; ++j) EXPECT_LE(r.d2(i, j - 1), r.d2(i, j));
}

TEST(Knn, MatchesBruteForceOracle) {
  Matrix p = random_points(5, 60, 7);
  const index_t k = 5;
  KnnResult r = exact_knn(p, k);
  for (index_t i = 0; i < 60; ++i) {
    // Oracle: sort all distances.
    std::vector<std::pair<double, index_t>> all;
    for (index_t j = 0; j < 60; ++j)
      if (j != i) all.emplace_back(sq_dist(p, i, j), j);
    std::sort(all.begin(), all.end());
    for (index_t j = 0; j < k; ++j) {
      EXPECT_NEAR(r.d2(i, j), all[static_cast<size_t>(j)].first, 1e-10);
    }
  }
}

TEST(Knn, KClampedToNMinusOne) {
  Matrix p = random_points(2, 4, 8);
  KnnResult r = exact_knn(p, 100);
  EXPECT_EQ(r.k, 3);
}

TEST(Knn, SubsetQueriesOnly) {
  Matrix p = random_points(3, 40, 9);
  std::vector<index_t> queries = {5, 17, 33};
  KnnResult r = exact_knn_subset(p, queries, 3);
  EXPECT_EQ(r.n, 3);
  KnnResult full = exact_knn(p, 3);
  for (index_t qi = 0; qi < 3; ++qi)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_EQ(r.id(qi, j), full.id(queries[static_cast<size_t>(qi)], j));
}

TEST(Knn, ThrowsOnTooFewPoints) {
  Matrix p = random_points(2, 1, 10);
  EXPECT_THROW(exact_knn(p, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fdks::knn
