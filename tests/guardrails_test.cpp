// Numerical-guardrail tests: degenerate inputs (duplicate points,
// lambda -> 0, identical kernel rows) must complete via the automatic
// diagonal-shift retry, GMRES must flag breakdown/stagnation/non-finite
// data instead of looping or emitting garbage, and the hybrid solver
// must auto-escalate its direct factor to a preconditioner when the
// residual misses the tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "iterative/gmres.hpp"
#include "obs/obs.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

// Narrow-bandwidth setup: K is close to the identity globally, so the
// only singularities are the ones we inject (duplicate points make the
// corresponding leaf blocks exactly rank-deficient at lambda = 0).
Matrix points_with_duplicates(index_t d, index_t n, int pairs,
                              uint64_t seed) {
  std::mt19937_64 rng(seed);
  Matrix p = Matrix::random_uniform(d, n, rng, -1.0, 1.0);
  for (int k = 0; k < pairs; ++k) {
    const index_t j = static_cast<index_t>(2 * k);
    for (index_t i = 0; i < d; ++i) p(i, j + 1) = p(i, j);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 24;
  cfg.tol = 1e-7;
  cfg.num_neighbors = 0;
  cfg.seed = 11;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

TEST(Guardrails, DuplicatePointsAtZeroLambdaTriggerShiftRetry) {
  obs::set_enabled(true);
  obs::reset();
  const index_t n = 256;
  Matrix pts = points_with_duplicates(3, n, 8, 1);
  askit::HMatrix h(pts, Kernel::gaussian(0.05), tight_config());
  SolverOptions opts;
  opts.lambda = 0.0;  // Exactly singular duplicate-pair leaf blocks.

  FastDirectSolver solver(h, opts);
  const FactorStatus fs = solver.factor_status();
  EXPECT_GE(fs.shifted_nodes, 1);
  EXPECT_GE(fs.shift_retries, 1);
  EXPECT_GT(fs.lambda_effective, 0.0);
  EXPECT_EQ(fs.code, FactorCode::ShiftedDiagonal) << fs.message();
  EXPECT_TRUE(fs.ok());
  // The raw detector still flags the repaired nodes.
  EXPECT_FALSE(solver.stability().stable());

  auto u = random_vec(n, 2);
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = solver.solve_checked(u, x);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(st.code, SolveCode::ShiftedDiagonal);
  EXPECT_EQ(st.shifted_nodes, fs.shifted_nodes);
  EXPECT_GT(st.lambda_effective, 0.0);
  EXPECT_TRUE(all_finite(x));
  EXPECT_TRUE(std::isfinite(st.residual));

  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counters.count("guardrail.shifted_nodes"), 1u);
  EXPECT_GE(counters.at("guardrail.shifted_nodes"), 1.0);
  EXPECT_GE(counters.at("guardrail.shift_retries"), 1.0);
  obs::set_enabled(false);
}

TEST(Guardrails, TinyLambdaCompletesViaShift) {
  const index_t n = 192;
  Matrix pts = points_with_duplicates(2, n, 6, 3);
  askit::HMatrix h(pts, Kernel::gaussian(0.05), tight_config());
  SolverOptions opts;
  opts.lambda = 1e-16;  // The small-lambda regime of paper section III.

  FastDirectSolver solver(h, opts);
  const FactorStatus fs = solver.factor_status();
  EXPECT_GE(fs.shifted_nodes, 1);
  EXPECT_GT(fs.lambda_effective, opts.lambda);

  auto u = random_vec(n, 4);
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = solver.solve_checked(u, x);
  EXPECT_TRUE(st.ok()) << st.message();
  EXPECT_TRUE(all_finite(x));
}

TEST(Guardrails, AutoShiftOffLeavesNearSingularStatus) {
  const index_t n = 192;
  Matrix pts = points_with_duplicates(2, n, 6, 5);
  askit::HMatrix h(pts, Kernel::gaussian(0.05), tight_config());
  SolverOptions opts;
  opts.lambda = 0.0;
  opts.auto_shift = false;

  FastDirectSolver solver(h, opts);
  const FactorStatus fs = solver.factor_status();
  EXPECT_EQ(fs.shifted_nodes, 0);
  EXPECT_GE(fs.flagged_nodes, 1);
  // Exact duplicates make the leaf LU exactly singular, so the leaf P^
  // solve goes non-finite and the status escalates past NearSingular to
  // NonFinite. Either way the factorization must report failure.
  EXPECT_TRUE(fs.code == FactorCode::NearSingular ||
              fs.code == FactorCode::NonFinite)
      << fs.message();
  EXPECT_FALSE(fs.ok());
}

TEST(Guardrails, CleanProblemReportsOkAndStaysUnshifted) {
  const index_t n = 192;
  std::mt19937_64 rng(7);
  Matrix pts = Matrix::random_uniform(2, n, rng, -1.0, 1.0);
  askit::HMatrix h(pts, Kernel::gaussian(0.5), tight_config());
  SolverOptions opts;
  opts.lambda = 1.0;

  FastDirectSolver solver(h, opts);
  const FactorStatus fs = solver.factor_status();
  EXPECT_EQ(fs.code, FactorCode::Ok) << fs.message();
  EXPECT_EQ(fs.shifted_nodes, 0);
  EXPECT_EQ(fs.lambda_effective, 1.0);

  auto u = random_vec(n, 8);
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = solver.solve_checked(u, x);
  EXPECT_EQ(st.code, SolveCode::Ok) << st.message();
  EXPECT_LT(st.residual, 1e-10);
}

TEST(Guardrails, SolveCheckedRejectsNonFiniteRhs) {
  const index_t n = 128;
  std::mt19937_64 rng(9);
  Matrix pts = Matrix::random_uniform(2, n, rng, -1.0, 1.0);
  askit::HMatrix h(pts, Kernel::gaussian(0.5), tight_config());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver solver(h, opts);

  auto u = random_vec(n, 10);
  u[17] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = solver.solve_checked(u, x);
  EXPECT_EQ(st.code, SolveCode::NonFinite);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("NaN"), std::string::npos);
}

TEST(Guardrails, GmresFlagsBreakdownOnSingularOperator) {
  // Nilpotent shift-up operator with b = e0: A b is exactly zero, so the
  // Krylov space exhausts immediately while the residual is still ||b||.
  const index_t n = 8;
  auto op = [n](std::span<const double> x, std::span<double> y) {
    for (index_t i = 0; i + 1 < n; ++i)
      y[static_cast<size_t>(i)] = x[static_cast<size_t>(i + 1)];
    y[static_cast<size_t>(n - 1)] = 0.0;
  };
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  b[0] = 1.0;
  iter::GmresOptions go;
  go.rtol = 1e-12;
  go.max_iters = 50;
  const auto r = iter::gmres(n, op, b, go);
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(all_finite(std::span<const double>(r.x.data(), r.x.size())));
}

TEST(Guardrails, GmresFlagsZeroOperatorAsBreakdownNotConverged) {
  // Regression guard: a zero operator used to "converge" with an Inf
  // solution through a division by the zero Hessenberg pivot.
  const index_t n = 4;
  auto op = [](std::span<const double>, std::span<double> y) {
    std::fill(y.begin(), y.end(), 0.0);
  };
  std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
  const auto r = iter::gmres(n, op, b, {});
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(all_finite(std::span<const double>(r.x.data(), r.x.size())));
}

TEST(Guardrails, GmresFlagsNonFiniteOperator) {
  const index_t n = 4;
  auto op = [](std::span<const double>, std::span<double> y) {
    std::fill(y.begin(), y.end(),
              std::numeric_limits<double>::quiet_NaN());
  };
  std::vector<double> b = {1.0, 1.0, 1.0, 1.0};
  const auto r = iter::gmres(n, op, b, {});
  EXPECT_TRUE(r.nonfinite);
  EXPECT_FALSE(r.converged);
}

TEST(Guardrails, GmresStagnationDetectorStopsEarly) {
  // Cyclic shift: the GMRES residual stays at ||b|| for n - 1 exact
  // iterations, so a window-5 detector must stop long before that.
  const index_t n = 64;
  auto op = [n](std::span<const double> x, std::span<double> y) {
    for (index_t i = 0; i < n; ++i)
      y[static_cast<size_t>(i)] =
          x[static_cast<size_t>((i + 1) % n)];
  };
  std::vector<double> b(static_cast<size_t>(n), 0.0);
  b[0] = 1.0;
  iter::GmresOptions go;
  go.rtol = 1e-12;
  go.max_iters = 200;
  go.stagnation_window = 5;
  const auto r = iter::gmres(n, op, b, go);
  EXPECT_TRUE(r.stagnated);
  EXPECT_FALSE(r.converged);
  EXPECT_LT(r.iterations, 20);
}

TEST(Guardrails, HybridEscalatesWhenDirectPassMissesTolerance) {
  obs::set_enabled(true);
  obs::reset();
  const index_t n = 512;
  std::mt19937_64 rng(13);
  Matrix pts = Matrix::random_uniform(3, n, rng, -1.0, 1.0);
  AskitConfig cfg = tight_config();
  cfg.max_rank = 40;
  cfg.level_restriction = 3;
  askit::HMatrix h(pts, Kernel::gaussian(0.6), cfg);

  HybridOptions ho;
  ho.direct.lambda = 1.0;
  // Deliberately cripple the reduced-system solve (zero Krylov budget:
  // the solve degenerates to the block-diagonal D^-1 u, which is linear
  // and so doubles as a sound preconditioner for the escalation) so the
  // first pass misses the escalation tolerance.
  ho.gmres.max_iters = 0;
  ho.escalate_residual_tol = 1e-7;
  ho.escalate_max_iters = 400;
  HybridSolver hy(h, ho);

  auto u = random_vec(n, 14);
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = hy.solve_with_status(u, x);
  EXPECT_EQ(st.escalations, 1) << st.message();
  EXPECT_EQ(st.code, SolveCode::Escalated) << st.message();
  EXPECT_TRUE(st.ok());
  EXPECT_LT(st.residual, 1e-7);
  EXPECT_TRUE(all_finite(x));

  const auto counters = obs::snapshot().counters;
  EXPECT_GE(counters.at("guardrail.escalations"), 1.0);
  obs::set_enabled(false);
}

TEST(Guardrails, HybridCleanSolveDoesNotEscalate) {
  const index_t n = 384;
  std::mt19937_64 rng(15);
  Matrix pts = Matrix::random_uniform(3, n, rng, -1.0, 1.0);
  AskitConfig cfg = tight_config();
  cfg.max_rank = 40;
  cfg.level_restriction = 2;
  askit::HMatrix h(pts, Kernel::gaussian(0.6), cfg);

  HybridOptions ho;
  ho.direct.lambda = 1.0;
  ho.gmres.rtol = 1e-12;
  ho.escalate_residual_tol = 1e-6;
  HybridSolver hy(h, ho);

  auto u = random_vec(n, 16);
  std::vector<double> x(static_cast<size_t>(n));
  const SolveStatus st = hy.solve_with_status(u, x);
  EXPECT_EQ(st.escalations, 0) << st.message();
  EXPECT_EQ(st.code, SolveCode::Ok) << st.message();
  EXPECT_LT(st.residual, 1e-6);
}

}  // namespace
}  // namespace fdks::core
